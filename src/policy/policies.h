/**
 * @file
 * The four concrete HarvestPolicy implementations. Most callers go
 * through makeHarvestPolicy(); the classes are public so tests can
 * poke policy-specific state (the bandit's arm history, the
 * hysteresis EWMAs) directly.
 */

#ifndef HH_POLICY_POLICIES_H
#define HH_POLICY_POLICIES_H

#include "policy/harvest_policy.h"

namespace hh::policy {

/**
 * Freezes the SystemConfig knobs into one immutable decision set.
 * Needs no epoch tick, so a static-policy run schedules exactly the
 * same events as the legacy inlined path — the A/B differential test
 * asserts bit-identical results.
 */
class StaticPolicy final : public HarvestPolicy
{
  public:
    explicit StaticPolicy(const PolicyConfig &cfg);
    const char *name() const override { return "static"; }
    void observe(const hh::stats::ObservationRow &row) override;
    bool wantsEpochTick() const override { return false; }
};

/**
 * Per-VM EWMA core-utilization thresholds with a reclaim guard band.
 *
 * Below `lendUtil` the VM is idle enough to donate aggressively: no
 * emergency buffer and a widened harvest cache region. Above
 * `holdUtil` the VM is protected: one idle core is held back as a
 * reclaim guard and the harvest region narrows. Between the two
 * thresholds the previous decision sticks (the hysteresis band), so
 * a VM oscillating around one threshold does not flap its partition.
 */
class HysteresisPolicy final : public HarvestPolicy
{
  public:
    explicit HysteresisPolicy(const PolicyConfig &cfg);
    const char *name() const override { return "hysteresis"; }
    void observe(const hh::stats::ObservationRow &row) override;

    /** EWMA utilization of @p vm (tests). */
    double ewmaUtil(std::uint32_t vm) const { return ewma_[vm]; }

  protected:
    void serializeState(hh::snap::Archive &ar) override;

  private:
    std::vector<double> ewma_;
    std::vector<std::uint8_t> seeded_; //!< EWMA initialized from row 1.
};

/**
 * Critical-aware way distribution after the CAT framework's
 * clustering policy: VMs are k-means-clustered by (EWMA MPKI, cache
 * occupancy) each epoch, clusters are ranked by mean MPKI, and
 * harvest-way fractions are distributed across the ranks — the most
 * critical (highest-MPKI) cluster keeps the most private ways while
 * the least critical donates the widest harvest region. Critical VMs
 * also hold one idle core back as a burst guard.
 */
class CriticalAwarePolicy final : public HarvestPolicy
{
  public:
    explicit CriticalAwarePolicy(const PolicyConfig &cfg);
    const char *name() const override { return "critical"; }
    void observe(const hh::stats::ObservationRow &row) override;

    /** Cluster rank of @p vm, 0 = most critical (tests). */
    unsigned clusterOf(std::uint32_t vm) const { return rank_[vm]; }

  protected:
    void serializeState(hh::snap::Archive &ar) override;

  private:
    std::vector<double> mpkiEwma_;
    std::vector<std::uint8_t> seeded_;
    std::vector<std::uint32_t> rank_; //!< Per-VM cluster rank.
};

/**
 * Epsilon-greedy bandit over lend-aggressiveness arms, applied
 * uniformly to every Primary VM. Per epoch the arm active during the
 * epoch is rewarded with the run's harvesting economics, epoch-local:
 * batch tasks completed on lent cores per lent core-second, minus
 * `p99Penalty` per millisecond the epoch's request P99 exceeds
 * `p99TargetMs` (the same accounting the TelemetryHub reports
 * fleet-wide). Exploration draws come from a dedicated seeded Rng
 * stream, so the same seed yields the same arm sequence.
 */
class BanditPolicy final : public HarvestPolicy
{
  public:
    /** One lend-aggressiveness arm. */
    struct Arm
    {
        const char *label;
        bool lendAllowed;
        /** Use the configured (static) block mode instead of
         *  @ref blockMode — the "default" arm must reproduce the
         *  config exactly. */
        bool configBlockMode;
        BlockHarvestMode blockMode;
        /** Added on top of the configured emergency buffer. */
        std::uint32_t emergencyBuffer;
        /** Harvest-way-fraction delta against the configured base. */
        double fractionDelta;
    };

    explicit BanditPolicy(const PolicyConfig &cfg);
    const char *name() const override { return "bandit"; }
    void observe(const hh::stats::ObservationRow &row) override;

    /** The arm chosen for each completed epoch, in order (tests). */
    const std::vector<std::uint32_t> &armHistory() const
    {
        return history_;
    }
    /** Mean reward per arm (tests, reports). */
    const std::vector<double> &armValues() const { return values_; }

    static const std::vector<Arm> &arms();

  protected:
    void serializeState(hh::snap::Archive &ar) override;

  private:
    void applyArm(std::uint32_t arm);

    hh::sim::Rng rng_;
    std::uint32_t current_ = 0;
    std::vector<double> values_;        //!< Incremental mean reward.
    std::vector<std::uint64_t> pulls_;
    std::vector<std::uint32_t> history_;
};

} // namespace hh::policy

#endif // HH_POLICY_POLICIES_H
