#include <algorithm>

#include "policy/policies.h"
#include "stats/histogram.h"

namespace hh::policy {

namespace {

/** Dedicated Rng stream id for bandit exploration draws. */
constexpr std::uint64_t kBanditStream = 0xB4DD17ULL;

} // namespace

const std::vector<BanditPolicy::Arm> &
BanditPolicy::arms()
{
    // Ordered from most conservative to most aggressive. "default"
    // reproduces the configured static knobs exactly (fractionDelta 0
    // against the configured base), so the bandit can always retreat
    // to the baseline behavior.
    static const std::vector<Arm> kArms = {
        {"hold", false, true, BlockHarvestMode::Always, 0, 0.0},
        {"cautious", true, false, BlockHarvestMode::Never, 1, -0.25},
        {"default", true, true, BlockHarvestMode::Always, 0, 0.0},
        {"aggressive", true, false, BlockHarvestMode::Always, 0, 0.25},
    };
    return kArms;
}

BanditPolicy::BanditPolicy(const PolicyConfig &cfg)
    : HarvestPolicy(cfg), rng_(cfg.seed, kBanditStream),
      values_(arms().size(), 0.0), pulls_(arms().size(), 0)
{
    // Start on the baseline arm so the pre-observation decisions are
    // the static ones; "cautious"/"default" emergency buffers stack
    // on top of the configured hwEmergencyBuffer.
    current_ = 2;
    applyArm(current_);
}

void
BanditPolicy::applyArm(std::uint32_t arm)
{
    const Arm &a = arms()[arm];
    for (std::uint32_t vm = 0; vm < decisions_.size(); ++vm) {
        if (vm == cfg_.harvestVm)
            continue;
        VmDecision &d = decisions_[vm];
        d.lendAllowed = a.lendAllowed;
        d.blockMode =
            a.configBlockMode ? fallback_.blockMode : a.blockMode;
        d.emergencyBuffer = cfg_.hwEmergencyBuffer + a.emergencyBuffer;
        // Delta-free arms keep the configured fraction verbatim (the
        // "default" arm must reproduce the static decision exactly).
        d.harvestWayFraction =
            a.fractionDelta == 0.0
                ? cfg_.harvestWayFraction
                : std::clamp(cfg_.harvestWayFraction + a.fractionDelta,
                             0.25, 0.75);
        // Cache leases follow the arm's core-lend aggressiveness.
        d.cacheLendAllowed = cfg_.cacheLendEnabled && a.lendAllowed;
    }
}

void
BanditPolicy::observe(const hh::stats::ObservationRow &row)
{
    // Reward the arm that was live during the epoch: batch tasks
    // completed on loaned cores per lent core-second (the same
    // economics TelemetryHub reports fleet-wide), minus p99Penalty
    // per millisecond the epoch's request P99 exceeds the target. An
    // epoch with nothing lent earns zero throughput reward, so the
    // "hold" arm only wins while lending actively hurts the P99.
    const double lentSec =
        hh::sim::cyclesToSec(row.harvestedCyclesDelta);
    const double throughput =
        lentSec > 0.0
            ? static_cast<double>(row.batchLoanedDelta) / lentSec
            : 0.0;
    const double p99Ms =
        hh::stats::logBucketPercentile(row.latencyHistDelta, 99.0) /
        1000.0;
    const double reward =
        throughput -
        cfg_.p99Penalty * std::max(0.0, p99Ms - cfg_.p99TargetMs);

    history_.push_back(current_);
    pulls_[current_] += 1;
    values_[current_] +=
        (reward - values_[current_]) /
        static_cast<double>(pulls_[current_]);

    // Epsilon-greedy selection for the next epoch. Both draws happen
    // unconditionally so the stream position is a pure function of
    // the epoch count, not of the rewards.
    const bool explore = rng_.bernoulli(cfg_.epsilon);
    const std::uint32_t random = static_cast<std::uint32_t>(
        rng_.uniformInt(static_cast<std::uint64_t>(arms().size())));
    std::uint32_t greedy = 0;
    for (std::uint32_t a = 1; a < values_.size(); ++a) {
        if (values_[a] > values_[greedy])
            greedy = a;
    }
    current_ = explore ? random : greedy;
    applyArm(current_);
}

void
BanditPolicy::serializeState(hh::snap::Archive &ar)
{
    ar.io(rng_);
    ar.io(current_);
    ar.io(values_);
    ar.io(pulls_);
    ar.io(history_);
}

} // namespace hh::policy
