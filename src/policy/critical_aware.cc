#include <algorithm>
#include <cmath>
#include <numeric>

#include "policy/policies.h"

namespace hh::policy {

namespace {

/** One VM's clustering features: (EWMA MPKI, cache occupancy). */
struct Point
{
    std::uint32_t vm;
    double mpki;
    double occ;
};

} // namespace

CriticalAwarePolicy::CriticalAwarePolicy(const PolicyConfig &cfg)
    : HarvestPolicy(cfg), mpkiEwma_(cfg.vmCount, 0.0),
      seeded_(cfg.vmCount, 0), rank_(cfg.vmCount, 0)
{
}

void
CriticalAwarePolicy::observe(const hh::stats::ObservationRow &row)
{
    // 1. EWMA the epoch MPKI so a single quiet epoch does not flip a
    //    critical VM to donor.
    const double a = cfg_.ewmaAlpha;
    std::vector<Point> pts;
    pts.reserve(row.vms.size());
    for (const auto &f : row.vms) {
        if (f.vm >= decisions_.size() || f.vm == cfg_.harvestVm)
            continue;
        if (!seeded_[f.vm]) {
            mpkiEwma_[f.vm] = f.mpki;
            seeded_[f.vm] = 1;
        } else {
            mpkiEwma_[f.vm] = a * f.mpki + (1.0 - a) * mpkiEwma_[f.vm];
        }
        pts.push_back({f.vm, mpkiEwma_[f.vm], f.cacheOccupancy});
    }
    if (pts.empty())
        return;

    // 2. Deterministic k-means over (MPKI, occupancy). Centroids are
    //    initialized evenly over the VMs sorted by MPKI (stable: ties
    //    break toward the lower VM id), then a fixed iteration count
    //    with lowest-index tie-breaks keeps the assignment a pure
    //    function of the observation stream.
    const unsigned k = std::min<unsigned>(
        std::max(1u, cfg_.clusters),
        static_cast<unsigned>(pts.size()));
    std::vector<std::uint32_t> order(pts.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                  if (pts[x].mpki != pts[y].mpki)
                      return pts[x].mpki < pts[y].mpki;
                  return pts[x].vm < pts[y].vm;
              });
    std::vector<double> cm(k), co(k); // centroid mpki / occupancy
    for (unsigned c = 0; c < k; ++c) {
        const auto &p = pts[order[(2 * c + 1) * pts.size() / (2 * k)]];
        cm[c] = p.mpki;
        co[c] = p.occ;
    }
    std::vector<unsigned> assign(pts.size(), 0);
    for (int iter = 0; iter < 8; ++iter) {
        for (std::size_t i = 0; i < pts.size(); ++i) {
            unsigned best = 0;
            double bestD = 0;
            for (unsigned c = 0; c < k; ++c) {
                const double dm = pts[i].mpki - cm[c];
                const double dc = pts[i].occ - co[c];
                const double d = dm * dm + dc * dc;
                if (c == 0 || d < bestD) {
                    best = c;
                    bestD = d;
                }
            }
            assign[i] = best;
        }
        for (unsigned c = 0; c < k; ++c) {
            double sm = 0, so = 0;
            std::size_t n = 0;
            for (std::size_t i = 0; i < pts.size(); ++i) {
                if (assign[i] != c)
                    continue;
                sm += pts[i].mpki;
                so += pts[i].occ;
                ++n;
            }
            if (n) {
                cm[c] = sm / static_cast<double>(n);
                co[c] = so / static_cast<double>(n);
            }
        }
    }

    // 3. Rank clusters by mean MPKI, descending: rank 0 is the most
    //    critical (cache-hungriest) cluster.
    std::vector<unsigned> byMpki(k);
    std::iota(byMpki.begin(), byMpki.end(), 0);
    std::sort(byMpki.begin(), byMpki.end(),
              [&](unsigned x, unsigned y) {
                  if (cm[x] != cm[y])
                      return cm[x] > cm[y];
                  return x < y;
              });
    std::vector<unsigned> rankOf(k);
    for (unsigned r = 0; r < k; ++r)
        rankOf[byMpki[r]] = r;

    // 4. Distribute harvest-way fractions across the ranks: the most
    //    critical cluster keeps the most private ways (0.25 harvest
    //    fraction), the least critical donates the widest region
    //    (0.75). Critical VMs also hold one idle core back.
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const unsigned r = rankOf[assign[i]];
        rank_[pts[i].vm] = r;
        VmDecision &d = decisions_[pts[i].vm];
        d.lendAllowed = true;
        d.blockMode = fallback_.blockMode;
        d.emergencyBuffer =
            r == 0 ? std::max(1u, cfg_.hwEmergencyBuffer)
                   : cfg_.hwEmergencyBuffer;
        d.harvestWayFraction =
            k == 1 ? cfg_.harvestWayFraction
                   : 0.25 + 0.5 * static_cast<double>(r) /
                                static_cast<double>(k - 1);
        // The cache-hungriest cluster keeps its L3 slice; everyone
        // else may lease it out.
        d.cacheLendAllowed = cfg_.cacheLendEnabled && r != 0;
    }
}

void
CriticalAwarePolicy::serializeState(hh::snap::Archive &ar)
{
    ar.io(mpkiEwma_);
    ar.io(seeded_);
    ar.io(rank_);
}

} // namespace hh::policy
