#include "noc/mesh.h"

#include <cstdlib>

#include "sim/log.h"

namespace hh::noc {

Mesh2D::Mesh2D(unsigned width, unsigned height,
               hh::sim::Cycles cyclesPerHop)
    : width_(width), height_(height), hop_(cyclesPerHop)
{
    if (width == 0 || height == 0)
        hh::sim::fatal("Mesh2D: dimensions must be positive");
}

unsigned
Mesh2D::hops(unsigned from, unsigned to) const
{
    if (from >= nodes() || to >= nodes())
        hh::sim::panic("Mesh2D::hops: node out of range");
    const int fx = static_cast<int>(from % width_);
    const int fy = static_cast<int>(from / width_);
    const int tx = static_cast<int>(to % width_);
    const int ty = static_cast<int>(to / width_);
    return static_cast<unsigned>(std::abs(fx - tx) + std::abs(fy - ty));
}

hh::sim::Cycles
Mesh2D::latency(unsigned from, unsigned to) const
{
    return hops(from, to) * hop_;
}

hh::sim::Cycles
Mesh2D::latencyToCenter(unsigned from) const
{
    const unsigned center = (height_ / 2) * width_ + width_ / 2;
    return latency(from, center);
}

} // namespace hh::noc
