/**
 * @file
 * The dedicated control network to the HardHarvest controller.
 *
 * Section 4.1.8: the controller is a centralized module reached over
 * a special latency-optimized network with thin links and a tree
 * topology, so control messages (dequeue, notify, interrupt) do not
 * compete with workload traffic on the regular mesh.
 */

#ifndef HH_NOC_CONTROL_TREE_H
#define HH_NOC_CONTROL_TREE_H

#include <cstdint>

#include "sim/time.h"

namespace hh::noc {

/**
 * Balanced k-ary tree whose root is the HardHarvest controller and
 * whose leaves are the cores.
 */
class ControlTree
{
  public:
    /**
     * @param leaves      Number of cores attached.
     * @param fanout      Tree arity (>= 2).
     * @param cyclesPerHop Latency per tree level.
     */
    explicit ControlTree(unsigned leaves, unsigned fanout = 4,
                         hh::sim::Cycles cyclesPerHop = 2);

    /** Tree depth (levels between a leaf and the root). */
    unsigned depth() const { return depth_; }

    /** One-way latency from any core to the controller. */
    hh::sim::Cycles coreToController() const;

    /** Round-trip latency core -> controller -> core. */
    hh::sim::Cycles roundTrip() const;

    unsigned leaves() const { return leaves_; }

  private:
    unsigned leaves_;
    unsigned fanout_;
    hh::sim::Cycles hop_;
    unsigned depth_;
};

} // namespace hh::noc

#endif // HH_NOC_CONTROL_TREE_H
