#include "noc/control_tree.h"

#include "sim/log.h"

namespace hh::noc {

ControlTree::ControlTree(unsigned leaves, unsigned fanout,
                         hh::sim::Cycles cyclesPerHop)
    : leaves_(leaves), fanout_(fanout), hop_(cyclesPerHop)
{
    if (leaves == 0)
        hh::sim::fatal("ControlTree: need at least one leaf");
    if (fanout < 2)
        hh::sim::fatal("ControlTree: fanout must be >= 2");
    depth_ = 1;
    unsigned reach = fanout_;
    while (reach < leaves_) {
        reach *= fanout_;
        ++depth_;
    }
}

hh::sim::Cycles
ControlTree::coreToController() const
{
    return depth_ * hop_;
}

hh::sim::Cycles
ControlTree::roundTrip() const
{
    return 2 * coreToController();
}

} // namespace hh::noc
