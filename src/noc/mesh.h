/**
 * @file
 * 2D-mesh on-chip network latency model (Table 1: 5 cycles/hop).
 *
 * The regular NoC carries workload traffic (cache fills, the Request
 * Context Memory transfers). We model latency as Manhattan hop count
 * times per-hop cost; contention on the regular mesh is second-order
 * for the evaluated effects and is not modelled.
 */

#ifndef HH_NOC_MESH_H
#define HH_NOC_MESH_H

#include <cstdint>

#include "sim/time.h"

namespace hh::noc {

/**
 * Rectangular mesh connecting cores (and one extra stop for the
 * Request Context Memory / LLC slices).
 */
class Mesh2D
{
  public:
    /**
     * @param width       Columns.
     * @param height      Rows; width*height nodes total.
     * @param cyclesPerHop Per-hop router+link latency.
     */
    Mesh2D(unsigned width, unsigned height,
           hh::sim::Cycles cyclesPerHop = 5);

    /** Number of nodes. */
    unsigned nodes() const { return width_ * height_; }

    /** Manhattan hop count between two nodes. */
    unsigned hops(unsigned from, unsigned to) const;

    /** Latency between two nodes. */
    hh::sim::Cycles latency(unsigned from, unsigned to) const;

    /**
     * Average latency from a node to the mesh centre (used for
     * transfers to centrally placed shared resources).
     */
    hh::sim::Cycles latencyToCenter(unsigned from) const;

    unsigned width() const { return width_; }
    unsigned height() const { return height_; }
    hh::sim::Cycles cyclesPerHop() const { return hop_; }

  private:
    unsigned width_;
    unsigned height_;
    hh::sim::Cycles hop_;
};

} // namespace hh::noc

#endif // HH_NOC_MESH_H
