#include "workload/alibaba.h"

#include <algorithm>
#include <cmath>

namespace hh::workload {

namespace {

/**
 * Lognormal sigma for average utilization. Together with the
 * burst-factor range below it reproduces both anchors: the median of
 * the averages is exp(mu) = 16.1%, and the 90th percentile of the
 * maxima lands near 40.7%.
 */
constexpr double kAvgSigma = 0.30;
constexpr double kBurstFactorLo = 1.3;
constexpr double kBurstFactorHi = 2.0;

} // namespace

AlibabaTrace::AlibabaTrace(std::uint64_t seed)
    : rng_(seed, 0xA11BABAULL), mu_(std::log(kAlibabaMedianAvgUtil)),
      sigma_(kAvgSigma)
{
}

double
AlibabaTrace::drawAvgUtil()
{
    return std::clamp(rng_.lognormal(mu_, sigma_), 0.01, 0.95);
}

std::vector<InstanceUtilization>
AlibabaTrace::instances(std::size_t n)
{
    std::vector<InstanceUtilization> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        InstanceUtilization u;
        u.avgUtil = drawAvgUtil();
        const double k = rng_.uniform(kBurstFactorLo, kBurstFactorHi);
        u.maxUtil = std::min(1.0, u.avgUtil * k);
        u.minUtil = u.avgUtil * rng_.uniform(0.1, 0.5);
        out.push_back(u);
    }
    return out;
}

std::vector<double>
AlibabaTrace::utilizationSeries(double seconds, double windowSec)
{
    const auto n = static_cast<std::size_t>(seconds / windowSec);
    std::vector<double> out;
    out.reserve(n);

    const double base = drawAvgUtil();
    bool in_burst = false;
    double edge = rng_.exponential(30.0); // mean 30 s between bursts
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i, t += windowSec) {
        while (t >= edge) {
            if (in_burst) {
                in_burst = false;
                edge += rng_.exponential(30.0);
            } else {
                in_burst = true;
                edge += rng_.exponential(8.0); // mean 8 s bursts
            }
        }
        double u = base * rng_.uniform(0.7, 1.3);
        if (in_burst)
            u = std::min(1.0, base * rng_.uniform(3.0, 5.0));
        out.push_back(std::clamp(u, 0.0, 1.0));
    }
    return out;
}

} // namespace hh::workload
