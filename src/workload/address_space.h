/**
 * @file
 * Page-level address-space model for microservices.
 *
 * Section 4.2.2 distinguishes *shared* pages (code, libraries,
 * read-only inputs, data allocated before the framework starts
 * serving) from *private* pages (allocated by an individual
 * invocation). Shared pages persist across invocations of the same
 * service and are what the non-harvest region is meant to retain;
 * private pages are invocation-local and never reused.
 *
 * Page ids are globally unique: the address-space id occupies the
 * top bits so pages of different VMs can never alias in the caches.
 */

#ifndef HH_WORKLOAD_ADDRESS_SPACE_H
#define HH_WORKLOAD_ADDRESS_SPACE_H

#include <cstdint>
#include <vector>

#include "cache/config.h"
#include "snapshot/archive.h"

namespace hh::workload {

/**
 * The paged memory image of one service (or batch application).
 */
class AddressSpace
{
  public:
    /**
     * @param asid            Address-space id (unique per VM/service).
     * @param codePages       Number of code pages (always Shared).
     * @param sharedDataPages Number of shared data pages.
     */
    AddressSpace(std::uint32_t asid, std::uint32_t codePages,
                 std::uint32_t sharedDataPages);

    /** Global page id of code page @p i. */
    hh::cache::Addr codePage(std::uint32_t i) const;

    /** Global page id of shared data page @p i. */
    hh::cache::Addr sharedDataPage(std::uint32_t i) const;

    /**
     * Allocate @p n fresh private pages for one invocation. Ids are
     * never recycled, modelling pages whose contents are not reused
     * across invocations.
     */
    std::vector<hh::cache::Addr> allocPrivatePages(std::uint32_t n);

    std::uint32_t codePageCount() const { return code_pages_; }
    std::uint32_t sharedDataPageCount() const { return shared_pages_; }
    std::uint32_t asid() const { return asid_; }

    /** Total private pages ever allocated (tests, footprint stats). */
    std::uint64_t privatePagesAllocated() const { return next_private_; }

    /** Only the private-page watermark is runtime state. */
    void serialize(hh::snap::Archive &ar) { ar.io(next_private_); }

  private:
    hh::cache::Addr base() const;

    std::uint32_t asid_;
    std::uint32_t code_pages_;
    std::uint32_t shared_pages_;
    std::uint64_t next_private_ = 0;
};

} // namespace hh::workload

#endif // HH_WORKLOAD_ADDRESS_SPACE_H
