#include "workload/loadgen.h"

#include "sim/log.h"

namespace hh::workload {

LoadGenerator::LoadGenerator(double baseRps, const BurstConfig &burst,
                             std::uint64_t seed, std::uint64_t stream)
    : base_rps_(baseRps), burst_(burst), rng_(seed, 0x10ADULL + stream)
{
    if (baseRps <= 0)
        hh::sim::fatal("LoadGenerator: rate must be positive");
    if (burst_.enabled) {
        burst_edge_sec_ = rng_.exponential(burst_.meanInterArrivalSec);
    }
}

void
LoadGenerator::advanceBurstState(double t_sec)
{
    if (!burst_.enabled)
        return;
    while (t_sec >= burst_edge_sec_) {
        if (in_burst_) {
            in_burst_ = false;
            burst_edge_sec_ +=
                rng_.exponential(burst_.meanInterArrivalSec);
        } else {
            in_burst_ = true;
            burst_edge_sec_ += rng_.exponential(burst_.meanDurationSec);
        }
    }
}

hh::sim::Cycles
LoadGenerator::next()
{
    advanceBurstState(clock_sec_);
    const double rate =
        base_rps_ * (in_burst_ ? burst_.multiplier : 1.0);
    clock_sec_ += rng_.exponential(1.0 / rate);
    return hh::sim::secToCycles(clock_sec_);
}

} // namespace hh::workload
