#include "workload/service.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace hh::workload {

using hh::sim::Cycles;

std::vector<ServiceSpec>
deathStarBenchServices()
{
    // Parameter mixes chosen so per-service behaviour mirrors the
    // paper's figures: User blocks on I/O frequently, HomeT operates
    // mostly on shared pages, CPost/HomeT are the long services,
    // UrlShort/Text are the short high-rate ones.
    std::vector<ServiceSpec> v;
    v.push_back({"Text",     160, 0.25, 2200,  48,  96, 24,
                 0.35, 0.65, 0.9, 1.0,  70, 250});
    v.push_back({"SGraph",   220, 0.28, 3800,  64, 192, 32,
                 0.35, 0.60, 0.9, 1.0,  60, 150});
    v.push_back({"User",     130, 0.25, 1800,  40,  64, 16,
                 0.35, 0.60, 0.9, 3.0,  85, 200});
    v.push_back({"PstStr",   300, 0.28, 4500,  64, 256, 48,
                 0.35, 0.55, 0.9, 2.0,  90, 100});
    v.push_back({"UsrMnt",   200, 0.25, 2700,  48, 128, 24,
                 0.35, 0.60, 0.9, 1.0,  50, 150});
    v.push_back({"HomeT",    380, 0.25, 6000,  96, 384, 16,
                 0.35, 0.85, 0.9, 2.0, 100, 65});
    v.push_back({"CPost",    420, 0.25, 7500,  96, 320, 64,
                 0.35, 0.55, 0.9, 2.0, 100, 65});
    v.push_back({"UrlShort",  90, 0.20, 1200,  24,  48,  8,
                 0.35, 0.60, 0.9, 1.0,  40, 250});
    return v;
}

ServiceSpec
serviceByName(const std::string &name)
{
    for (const auto &s : deathStarBenchServices()) {
        if (s.name == name)
            return s;
    }
    hh::sim::fatal("serviceByName: unknown service '", name, "'");
}

ServiceWorkload::ServiceWorkload(const ServiceSpec &spec,
                                 std::uint32_t asid, std::uint64_t seed)
    : spec_(spec),
      space_(asid, spec.codePages, spec.sharedDataPages),
      rng_(seed, 0x5E57ULL + asid),
      code_zipf_(hh::sim::sharedZipfSampler(spec.codePages,
                                            spec.zipfTheta)),
      shared_zipf_(hh::sim::sharedZipfSampler(
          std::max<std::uint32_t>(1, spec.sharedDataPages),
          spec.zipfTheta))
{
}

InvocationPlan
ServiceWorkload::planInvocation()
{
    InvocationPlan plan;
    plan.privatePages = space_.allocPrivatePages(spec_.privatePages);

    // Lognormal compute time with the requested CV.
    const double cv = std::max(0.01, spec_.computeCv);
    const double sigma = std::sqrt(std::log(1.0 + cv * cv));
    const double mu = std::log(spec_.computeUs) - 0.5 * sigma * sigma;
    const double total_us = rng_.lognormal(mu, sigma);
    const Cycles total_compute = hh::sim::usToCycles(total_us);

    // Number of blocking calls: Poisson-like around the mean, at
    // least zero. We draw a geometric-ish integer via rounding an
    // exponential for simplicity and determinism.
    std::uint32_t io_calls = 0;
    if (spec_.ioCalls > 0) {
        const double draw = rng_.exponential(spec_.ioCalls);
        io_calls = static_cast<std::uint32_t>(
            std::min(8.0, std::floor(draw + 0.5)));
    }

    const std::uint32_t n_segments = io_calls + 1;
    const Cycles per_seg_compute = total_compute / n_segments;
    const std::uint32_t per_seg_accesses =
        std::max<std::uint32_t>(1, spec_.memAccesses / n_segments);

    for (std::uint32_t i = 0; i < n_segments; ++i) {
        Segment seg;
        seg.compute = per_seg_compute;
        seg.accesses = per_seg_accesses;
        if (i + 1 < n_segments) {
            seg.endsInIo = true;
            seg.ioTime = hh::sim::usToCycles(
                rng_.exponential(spec_.ioTimeUs));
        }
        plan.segments.push_back(seg);
    }
    return plan;
}

hh::cache::MemAccess
ServiceWorkload::nextAccess(const InvocationPlan &plan)
{
    hh::cache::MemAccess a;
    a.line = static_cast<std::uint32_t>(
        rng_.uniformInt(hh::cache::kLinesPerPage));

    if (rng_.bernoulli(spec_.instrFrac)) {
        a.isInstr = true;
        a.shared = true;
        a.page = space_.codePage(
            static_cast<std::uint32_t>(code_zipf_->sample(rng_)));
        return a;
    }

    a.isInstr = false;
    if (spec_.sharedDataPages > 0 && rng_.bernoulli(spec_.sharedFrac)) {
        a.shared = true;
        a.page = space_.sharedDataPage(
            static_cast<std::uint32_t>(shared_zipf_->sample(rng_)));
    } else if (!plan.privatePages.empty()) {
        a.shared = false;
        a.page = plan.privatePages[rng_.uniformInt(
            plan.privatePages.size())];
    } else {
        // Degenerate spec with no private pages: fall back to shared.
        a.shared = true;
        a.page = space_.sharedDataPage(
            static_cast<std::uint32_t>(shared_zipf_->sample(rng_)));
    }
    return a;
}

} // namespace hh::workload
