/**
 * @file
 * Microservice specifications and invocation planning.
 *
 * Each of the 8 DeathStarBench-like services is described by a
 * parametric spec: compute time, memory-access count, footprint
 * split into code / shared-data / private pages, blocking-I/O
 * structure (synchronous RPCs to backends), and offered load. An
 * invocation is planned as a sequence of execution segments
 * separated by blocking I/O calls; the core model replays segments
 * against the cache hierarchy.
 */

#ifndef HH_WORKLOAD_SERVICE_H
#define HH_WORKLOAD_SERVICE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "snapshot/archive.h"
#include "workload/address_space.h"

namespace hh::workload {

/**
 * Static description of one microservice.
 */
struct ServiceSpec
{
    std::string name;

    /** Mean pure-compute time per invocation (excl. memory stalls). */
    double computeUs = 150.0;
    /** Coefficient of variation of the compute time (lognormal). */
    double computeCv = 0.25;

    /** Memory accesses replayed per invocation. */
    std::uint32_t memAccesses = 2000;

    /** Footprint in pages. */
    std::uint32_t codePages = 48;
    std::uint32_t sharedDataPages = 128;
    std::uint32_t privatePages = 24;

    /** Fraction of accesses that are instruction fetches. */
    double instrFrac = 0.35;
    /** Of data accesses, fraction that touch shared pages. */
    double sharedFrac = 0.65;
    /** Zipf skew over code and shared-data pages. */
    double zipfTheta = 0.9;

    /** Mean number of blocking I/O (backend RPC) calls. */
    double ioCalls = 1.0;
    /** Mean backend service time per call (profiled, §5). */
    double ioTimeUs = 150.0;

    /** Offered load per Primary-VM core, requests/second (65-250). */
    double rpsPerCore = 150.0;
};

/** The 8 SocialNet services used in the evaluation (§5). */
std::vector<ServiceSpec> deathStarBenchServices();

/** Look up a service spec by name; fatal() if unknown. */
ServiceSpec serviceByName(const std::string &name);

/**
 * One execution segment: compute + memory accesses, optionally
 * terminated by a blocking I/O call.
 */
struct Segment
{
    hh::sim::Cycles compute = 0;      //!< Pure compute cycles.
    std::uint32_t accesses = 0;       //!< Memory accesses to replay.
    bool endsInIo = false;            //!< Blocks on I/O afterwards.
    hh::sim::Cycles ioTime = 0;       //!< Backend time (excl. fabric).

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(compute);
        ar.io(accesses);
        ar.io(endsInIo);
        ar.io(ioTime);
    }
};

/**
 * A fully planned invocation, ready to execute.
 */
struct InvocationPlan
{
    std::vector<Segment> segments;
    std::vector<hh::cache::Addr> privatePages;

    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(segments);
        ar.io(privatePages);
    }
};

/**
 * Live workload state of one service instance: its address space and
 * the generators that produce invocation plans and access streams.
 */
class ServiceWorkload
{
  public:
    /**
     * @param spec Service parameters.
     * @param asid Address-space id of the hosting VM.
     * @param seed Experiment seed (per-workload stream derived).
     */
    ServiceWorkload(const ServiceSpec &spec, std::uint32_t asid,
                    std::uint64_t seed);

    /** Plan the segments and private pages of one new invocation. */
    InvocationPlan planInvocation();

    /**
     * Draw the next memory access for an executing invocation.
     *
     * @param plan The invocation being executed (for private pages).
     */
    hh::cache::MemAccess nextAccess(const InvocationPlan &plan);

    const ServiceSpec &spec() const { return spec_; }
    AddressSpace &addressSpace() { return space_; }

    /**
     * Save/restore the generator stream position and the
     * private-page watermark (the Zipf CDFs are construction-time
     * constants derived from the spec).
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(rng_);
        ar.io(space_);
    }

  private:
    ServiceSpec spec_;
    AddressSpace space_;
    hh::sim::Rng rng_;
    /** Shared across instances with identical (pages, theta): the
     *  CDF + bucket index are immutable, and a service-graph fleet
     *  replicates the same tier spec on dozens of servers. */
    std::shared_ptr<const hh::sim::ZipfSampler> code_zipf_;
    std::shared_ptr<const hh::sim::ZipfSampler> shared_zipf_;
};

} // namespace hh::workload

#endif // HH_WORKLOAD_SERVICE_H
