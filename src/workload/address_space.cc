#include "workload/address_space.h"

#include "sim/log.h"

namespace hh::workload {

using hh::cache::Addr;

namespace {

/** Region selectors within an address space's page-id namespace. */
constexpr Addr kCodeRegion = 0;
constexpr Addr kSharedRegion = 1;
constexpr Addr kPrivateRegion = 2;

/** Bits reserved for the page index within a region. */
constexpr unsigned kPageBits = 40;
constexpr unsigned kRegionBits = 2;

} // namespace

AddressSpace::AddressSpace(std::uint32_t asid, std::uint32_t codePages,
                           std::uint32_t sharedDataPages)
    : asid_(asid), code_pages_(codePages), shared_pages_(sharedDataPages)
{
    if (codePages == 0)
        hh::sim::fatal("AddressSpace: services need at least one code "
                       "page");
}

Addr
AddressSpace::base() const
{
    return static_cast<Addr>(asid_) << (kPageBits + kRegionBits);
}

Addr
AddressSpace::codePage(std::uint32_t i) const
{
    if (i >= code_pages_)
        hh::sim::panic("AddressSpace::codePage out of range");
    return base() | (kCodeRegion << kPageBits) | i;
}

Addr
AddressSpace::sharedDataPage(std::uint32_t i) const
{
    if (i >= shared_pages_)
        hh::sim::panic("AddressSpace::sharedDataPage out of range");
    return base() | (kSharedRegion << kPageBits) | i;
}

std::vector<Addr>
AddressSpace::allocPrivatePages(std::uint32_t n)
{
    std::vector<Addr> pages;
    pages.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        pages.push_back(base() | (kPrivateRegion << kPageBits) |
                        next_private_++);
    }
    return pages;
}

} // namespace hh::workload
