#include "workload/batch.h"

#include <cmath>

#include "sim/log.h"

namespace hh::workload {

std::vector<BatchSpec>
batchApplications()
{
    // Graph apps have skewed, moderate footprints; the ML training
    // jobs (especially RndFTrain) are memory-intensive and see lower
    // harvested-core benefit (paper §6.6); Hadoop streams.
    std::vector<BatchSpec> v;
    v.push_back({"BFS",       180, 3500, 24,  3072, 0.20, 0.70});
    v.push_back({"CC",        200, 4000, 24,  3072, 0.20, 0.65});
    v.push_back({"DC",        160, 3000, 24,  2048, 0.20, 0.75});
    v.push_back({"PRank",     220, 4500, 24,  4096, 0.20, 0.60});
    v.push_back({"LRTrain",   260, 5000, 32,  6144, 0.15, 0.50});
    v.push_back({"RndFTrain", 300, 6500, 32,  8192, 0.15, 0.35});
    v.push_back({"Hadoop",    240, 5000, 40,  6144, 0.20, 0.45});
    v.push_back({"MUMmer",    210, 4200, 28,  5120, 0.18, 0.55});
    return v;
}

BatchSpec
batchByName(const std::string &name)
{
    for (const auto &b : batchApplications()) {
        if (b.name == name)
            return b;
    }
    hh::sim::fatal("batchByName: unknown batch app '", name, "'");
}

BatchWorkload::BatchWorkload(const BatchSpec &spec, std::uint32_t asid,
                             std::uint64_t seed)
    : spec_(spec), space_(asid, spec.codePages, spec.dataPages),
      rng_(seed, 0xBA7C4ULL + asid),
      data_zipf_(spec.dataPages, spec.zipfTheta),
      code_zipf_(spec.codePages, 0.9)
{
}

BatchTask
BatchWorkload::planTask()
{
    BatchTask t;
    // Modest variability: batch tasks are homogeneous units of work.
    const double us = spec_.taskComputeUs * rng_.uniform(0.85, 1.15);
    t.compute = hh::sim::usToCycles(us);
    t.accesses = spec_.taskAccesses;
    return t;
}

hh::cache::MemAccess
BatchWorkload::nextAccess()
{
    hh::cache::MemAccess a;
    a.line = static_cast<std::uint32_t>(
        rng_.uniformInt(hh::cache::kLinesPerPage));
    if (rng_.bernoulli(spec_.instrFrac)) {
        a.isInstr = true;
        a.shared = true;
        a.page = space_.codePage(
            static_cast<std::uint32_t>(code_zipf_.sample(rng_)));
    } else {
        a.isInstr = false;
        // Batch data is long-lived application state: shared across
        // tasks of the same app (Shared=1 in its own VM's terms).
        a.shared = true;
        a.page = space_.sharedDataPage(
            static_cast<std::uint32_t>(data_zipf_.sample(rng_)));
    }
    return a;
}

} // namespace hh::workload
