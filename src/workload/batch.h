/**
 * @file
 * Batch (Harvest VM) workload models.
 *
 * Section 5 runs one batch application per server's Harvest VM:
 * GraphBIG (BFS, CC, DC, PRank), FunctionBench ML training (LRTrain,
 * RndFTrain), CloudSuite data analytics (Hadoop) and BioBench
 * bioinformatics (MUMmer). A batch app is an endless supply of tasks
 * (the Harvest VM "always has available work", §4.1.4); throughput is
 * tasks completed per unit time. Each task is compute plus a memory
 * access stream over a large, persistent footprint — so batch
 * performance is sensitive to how much cache capacity the harvest
 * region grants.
 */

#ifndef HH_WORKLOAD_BATCH_H
#define HH_WORKLOAD_BATCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "snapshot/archive.h"
#include "workload/address_space.h"

namespace hh::workload {

/**
 * Static description of one batch application.
 */
struct BatchSpec
{
    std::string name;

    /** Mean pure-compute time per task (microseconds). */
    double taskComputeUs = 200.0;

    /** Memory accesses per task. */
    std::uint32_t taskAccesses = 4000;

    /** Footprint in pages (all treated as the app's working set). */
    std::uint32_t codePages = 32;
    std::uint32_t dataPages = 4096;

    /** Fraction of accesses that are instruction fetches. */
    double instrFrac = 0.2;

    /** Zipf skew over data pages; lower = more memory-intensive. */
    double zipfTheta = 0.6;
};

/** The 8 batch applications of the evaluation (§5). */
std::vector<BatchSpec> batchApplications();

/** Look up a batch spec by name; fatal() if unknown. */
BatchSpec batchByName(const std::string &name);

/**
 * One plan-able batch task.
 */
struct BatchTask
{
    hh::sim::Cycles compute = 0;
    std::uint32_t accesses = 0;
};

/**
 * Live batch workload: persistent address space + task generator.
 */
class BatchWorkload
{
  public:
    BatchWorkload(const BatchSpec &spec, std::uint32_t asid,
                  std::uint64_t seed);

    /** Plan the next task. */
    BatchTask planTask();

    /** Draw the next memory access for an executing task. */
    hh::cache::MemAccess nextAccess();

    const BatchSpec &spec() const { return spec_; }

    /** Stream position + page watermark; Zipf CDFs are constants. */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(rng_);
        ar.io(space_);
    }

  private:
    BatchSpec spec_;
    AddressSpace space_;
    hh::sim::Rng rng_;
    hh::sim::ZipfSampler data_zipf_;
    hh::sim::ZipfSampler code_zipf_;
};

} // namespace hh::workload

#endif // HH_WORKLOAD_BATCH_H
