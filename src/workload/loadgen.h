/**
 * @file
 * Open-loop load generation.
 *
 * Section 5: "we execute with real-world invocation rates, using an
 * open-loop load generator that keeps the load the same across all
 * systems (i.e., the client is independent of the server)". We model
 * Poisson arrivals whose rate is modulated over time by a bursty
 * multiplier matching the fluctuations of the Alibaba traces (Fig 3):
 * a low base load with occasional multi-x spikes.
 */

#ifndef HH_WORKLOAD_LOADGEN_H
#define HH_WORKLOAD_LOADGEN_H

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "snapshot/archive.h"

namespace hh::workload {

/** Burst-modulation parameters. */
struct BurstConfig
{
    bool enabled = true;
    /** Mean time between bursts (seconds of simulated time). */
    double meanInterArrivalSec = 0.2;
    /** Mean burst duration (seconds). */
    double meanDurationSec = 0.04;
    /** Rate multiplier during a burst. */
    double multiplier = 3.0;
};

/**
 * Open-loop Poisson arrival generator with burst modulation.
 *
 * Arrival times are pre-drawable one at a time: next() returns the
 * absolute time of the next arrival. The generator is independent of
 * server state (open loop), so the same seed produces the same
 * arrival sequence for every evaluated system.
 */
class LoadGenerator
{
  public:
    /**
     * @param baseRps Base arrival rate (requests per second).
     * @param burst   Burst configuration.
     * @param seed    Experiment seed.
     * @param stream  Per-generator stream id.
     */
    LoadGenerator(double baseRps, const BurstConfig &burst,
                  std::uint64_t seed, std::uint64_t stream);

    /** Absolute time of the next arrival (monotonically increasing). */
    hh::sim::Cycles next();

    /** Current rate multiplier at the generator's internal clock. */
    double currentMultiplier() const { return in_burst_ ? burst_.multiplier : 1.0; }

    double baseRps() const { return base_rps_; }

    /**
     * Save/restore the open-loop state: stream position, internal
     * clock and burst on/off process. A restored generator produces
     * exactly the arrival sequence the saved one would have.
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(rng_);
        ar.io(clock_sec_);
        ar.io(in_burst_);
        ar.io(burst_edge_sec_);
    }

  private:
    /** Advance the burst on/off process past time @p t. */
    void advanceBurstState(double t_sec);

    double base_rps_;
    BurstConfig burst_;
    hh::sim::Rng rng_;
    double clock_sec_ = 0.0;        //!< Time of last arrival.
    bool in_burst_ = false;
    double burst_edge_sec_ = 0.0;   //!< Next on/off transition.
};

} // namespace hh::workload

#endif // HH_WORKLOAD_LOADGEN_H
