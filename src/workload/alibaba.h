/**
 * @file
 * Synthetic Alibaba-like microservice utilization traces.
 *
 * The paper characterizes harvesting opportunity with Alibaba's
 * production traces: 30-second-granularity time series of average /
 * maximum / minimum core utilization per microservice instance, with
 * two published anchors (§1, §3):
 *   - 50% of instances have average core utilization below 16.1%,
 *   - 90% of instances have maximum core utilization below 40.7%.
 *
 * We do not have the proprietary trace files, so this module
 * synthesizes statistically matching instances: per-instance average
 * utilization is drawn from a lognormal fitted to the anchors, and
 * each instance's time series is a bursty on/off modulation around
 * its average (Fig 3's shape). The synthesizer also exports the
 * burst parameters used to drive the open-loop load generator so the
 * full-system experiments see the same load dynamics.
 */

#ifndef HH_WORKLOAD_ALIBABA_H
#define HH_WORKLOAD_ALIBABA_H

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace hh::workload {

/** Published CDF anchors from the paper. */
inline constexpr double kAlibabaMedianAvgUtil = 0.161;
inline constexpr double kAlibabaP90MaxUtil = 0.407;

/** Summary statistics of one synthesized instance. */
struct InstanceUtilization
{
    double avgUtil = 0;
    double maxUtil = 0;
    double minUtil = 0;
};

/**
 * Generator of Alibaba-like utilization distributions and series.
 */
class AlibabaTrace
{
  public:
    explicit AlibabaTrace(std::uint64_t seed = 42);

    /**
     * Synthesize summary stats for @p n instances (Fig 2's CDF).
     */
    std::vector<InstanceUtilization> instances(std::size_t n);

    /**
     * Synthesize one instance's utilization time series (Fig 3).
     *
     * @param seconds  Length of the series in (simulated) seconds.
     * @param windowSec Measurement granularity (the traces use 30 s;
     *                  Fig 3 plots finer detail, default 5 s).
     * @return Utilization in [0, 1] per window.
     */
    std::vector<double> utilizationSeries(double seconds,
                                          double windowSec = 5.0);

    /**
     * Draw a per-instance average utilization from the fitted
     * distribution.
     */
    double drawAvgUtil();

  private:
    hh::sim::Rng rng_;
    double mu_;    //!< Lognormal mu of avg utilization.
    double sigma_; //!< Lognormal sigma of avg utilization.
};

} // namespace hh::workload

#endif // HH_WORKLOAD_ALIBABA_H
