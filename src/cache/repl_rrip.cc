#include "cache/repl_rrip.h"

#include "sim/log.h"

namespace hh::cache {

unsigned
RripPolicy::victim(const SetContext &ctx, bool incoming_shared)
{
    (void)incoming_shared;
    const WayMask inv = detail::invalidMask(ctx.ways, ctx.allowedMask);
    if (inv) {
        for (unsigned w = 0; w < ctx.ways.size(); ++w) {
            if (inv & (WayMask{1} << w))
                return w;
        }
    }
    // SRRIP aging is stateless from the array's point of view: we
    // compute how much every allowed way would need to age for one to
    // reach kMaxRrpv and pick that way (lowest index breaks ties).
    // Note: mutation of rrpv on aging is performed by the array via
    // ageSet(); here we only select. To keep the policy object the
    // single owner of RRIP semantics we select the way with the
    // maximum current RRPV.
    unsigned best = static_cast<unsigned>(ctx.ways.size());
    int best_rrpv = -1;
    std::uint64_t best_use = ~0ULL;
    for (unsigned w = 0; w < ctx.ways.size(); ++w) {
        if (!(ctx.allowedMask & (WayMask{1} << w)))
            continue;
        const auto &ws = ctx.ways[w];
        if (static_cast<int>(ws.rrpv) > best_rrpv ||
            (static_cast<int>(ws.rrpv) == best_rrpv &&
             ws.lastUse < best_use)) {
            best_rrpv = ws.rrpv;
            best_use = ws.lastUse;
            best = w;
        }
    }
    if (best >= ctx.ways.size())
        hh::sim::panic("RripPolicy: empty allowed mask");
    return best;
}

void
RripPolicy::touch(WayState &way, std::uint64_t tick)
{
    way.lastUse = tick;
    way.rrpv = 0;
}

void
RripPolicy::fill(WayState &way, std::uint64_t tick)
{
    way.lastUse = tick;
    way.rrpv = kInsertRrpv;
}

} // namespace hh::cache
