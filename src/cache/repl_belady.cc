#include "cache/repl_belady.h"

#include <algorithm>

#include "sim/log.h"

namespace hh::cache {

NextUseOracle::NextUseOracle(const std::vector<Addr> &trace)
{
    for (std::uint64_t i = 0; i < trace.size(); ++i)
        positions_[trace[i]].push_back(i);
}

std::uint64_t
NextUseOracle::nextUse(Addr key, std::uint64_t pos) const
{
    const auto it = positions_.find(key);
    if (it == positions_.end())
        return kNever;
    const auto &v = it->second;
    const auto p = std::upper_bound(v.begin(), v.end(), pos);
    return p == v.end() ? kNever : *p;
}

unsigned
BeladyPolicy::victim(const SetContext &ctx, bool incoming_shared)
{
    (void)incoming_shared;
    const WayMask inv = detail::invalidMask(ctx.ways, ctx.allowedMask);
    if (inv) {
        for (unsigned w = 0; w < ctx.ways.size(); ++w) {
            if (inv & (WayMask{1} << w))
                return w;
        }
    }
    // Evict the way whose next use is farthest (never-used wins).
    unsigned best = static_cast<unsigned>(ctx.ways.size());
    std::uint64_t best_next = 0;
    for (unsigned w = 0; w < ctx.ways.size(); ++w) {
        if (!(ctx.allowedMask & (WayMask{1} << w)))
            continue;
        const std::uint64_t nu = oracle_.nextUse(ctx.ways[w].tag, pos_);
        if (best >= ctx.ways.size() || nu > best_next) {
            best = w;
            best_next = nu;
        }
        if (nu == NextUseOracle::kNever)
            break; // cannot do better
    }
    if (best >= ctx.ways.size())
        hh::sim::panic("BeladyPolicy: empty allowed mask");
    return best;
}

void
BeladyPolicy::touch(WayState &way, std::uint64_t tick)
{
    way.lastUse = tick;
    ++pos_;
}

void
BeladyPolicy::fill(WayState &way, std::uint64_t tick)
{
    way.lastUse = tick;
    ++pos_;
}

} // namespace hh::cache
