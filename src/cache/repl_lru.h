/**
 * @file
 * Vanilla least-recently-used replacement (the paper's baseline).
 */

#ifndef HH_CACHE_REPL_LRU_H
#define HH_CACHE_REPL_LRU_H

#include "cache/replacement.h"

namespace hh::cache {

/**
 * LRU: evict the least-recently-used allowed way; invalid ways first.
 */
class LruPolicy : public ReplacementPolicy
{
  public:
    unsigned victim(const SetContext &ctx, bool incoming_shared) override;
    const char *name() const override { return "LRU"; }
};

} // namespace hh::cache

#endif // HH_CACHE_REPL_LRU_H
