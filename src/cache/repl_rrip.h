/**
 * @file
 * Static RRIP (SRRIP) replacement, the advanced baseline of Fig 14.
 *
 * 2-bit re-reference prediction values: entries are inserted with
 * RRPV = 2 ("long"), promoted to 0 on a hit, and the victim is a way
 * with RRPV = 3 (aging all ways until one is found).
 * Jaleel et al., ISCA 2010.
 */

#ifndef HH_CACHE_REPL_RRIP_H
#define HH_CACHE_REPL_RRIP_H

#include "cache/replacement.h"

namespace hh::cache {

/**
 * SRRIP with 2-bit RRPVs.
 */
class RripPolicy : public ReplacementPolicy
{
  public:
    unsigned victim(const SetContext &ctx, bool incoming_shared) override;
    void touch(WayState &way, std::uint64_t tick) override;
    void fill(WayState &way, std::uint64_t tick) override;
    const char *name() const override { return "RRIP"; }

  private:
    static constexpr std::uint8_t kMaxRrpv = 3;
    static constexpr std::uint8_t kInsertRrpv = 2;
};

} // namespace hh::cache

#endif // HH_CACHE_REPL_RRIP_H
