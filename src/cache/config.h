/**
 * @file
 * Geometry descriptions and shared types for caches and TLBs.
 *
 * Defaults follow Table 1 of the paper (Sunny Cove-like cores):
 *   L1D 48 KB/12-way/5-cycle RT, L1I 32 KB/8-way/5-cycle RT,
 *   L2 512 KB/8-way/13-cycle RT, L3 2 MB per core/16-way/36-cycle RT,
 *   L1 TLB 128-entry/4-way/2-cycle RT, L2 TLB 2048-entry/8-way/12-cycle.
 */

#ifndef HH_CACHE_CONFIG_H
#define HH_CACHE_CONFIG_H

#include <cstdint>

#include "sim/time.h"

namespace hh::cache {

/** Byte-addressed (or key-space) address. */
using Addr = std::uint64_t;

/** Way bitmask; bit i set means way i is a member. */
using WayMask = std::uint64_t;

/** Replacement policy selector. */
enum class ReplKind
{
    LRU,         //!< Vanilla least-recently-used.
    RRIP,        //!< Static re-reference interval prediction (SRRIP).
    HardHarvest, //!< Paper Algorithm 1 with eviction candidates.
    CDP,         //!< Code-Data-Prioritization variant (paper 6.3).
    Belady,      //!< Offline optimal (trace replay only).
};

/** Printable name of a replacement kind. */
const char *replKindName(ReplKind kind);

/**
 * Geometry of one set-associative structure (cache level or TLB).
 */
struct Geometry
{
    std::uint32_t sets = 64;          //!< Number of sets (power of 2).
    std::uint32_t ways = 8;           //!< Associativity.
    hh::sim::Cycles latency = 5;      //!< Round-trip hit latency.

    std::uint32_t
    entries() const
    {
        return sets * ways;
    }
};

/** Line size shared by all caches (Table 1). */
inline constexpr std::uint32_t kLineBytes = 64;

/** Page size assumed by the TLB model. */
inline constexpr std::uint32_t kPageBytes = 4096;

/** L1 data cache: 48 KB, 12-way, 64 B lines -> 64 sets. */
inline constexpr Geometry kL1D{64, 12, 5};

/** L1 instruction cache: 32 KB, 8-way -> 64 sets. */
inline constexpr Geometry kL1I{64, 8, 5};

/** L2 cache: 512 KB, 8-way -> 1024 sets. */
inline constexpr Geometry kL2{1024, 8, 13};

/** L3 slice per core: 2 MB, 16-way -> 2048 sets. */
inline constexpr Geometry kL3PerCore{2048, 16, 36};

/** L1 TLB: 128 entries, 4-way. */
inline constexpr Geometry kL1Tlb{32, 4, 2};

/** L2 TLB: 2048 entries, 8-way. */
inline constexpr Geometry kL2Tlb{256, 8, 12};

/** Page-table walk cost on an L2 TLB miss (model constant). */
inline constexpr hh::sim::Cycles kPageWalkCycles = 150;

/**
 * Scale the number of ways of a geometry (Fig 7's 75/50/25% sweeps),
 * keeping the number of sets constant as the paper does.
 *
 * @param g        Base geometry.
 * @param fraction Fraction of ways to keep, in (0, 1]; at least one
 *                 way is always kept.
 */
Geometry scaleWays(const Geometry &g, double fraction);

} // namespace hh::cache

#endif // HH_CACHE_CONFIG_H
