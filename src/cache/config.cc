#include "cache/config.h"

#include <algorithm>
#include <cmath>

namespace hh::cache {

const char *
replKindName(ReplKind kind)
{
    switch (kind) {
      case ReplKind::LRU:         return "LRU";
      case ReplKind::RRIP:        return "RRIP";
      case ReplKind::HardHarvest: return "HardHarvest";
      case ReplKind::CDP:         return "CDP";
      case ReplKind::Belady:      return "Belady";
    }
    return "?";
}

Geometry
scaleWays(const Geometry &g, double fraction)
{
    Geometry out = g;
    const auto scaled = static_cast<std::uint32_t>(
        std::floor(static_cast<double>(g.ways) * fraction));
    out.ways = std::max<std::uint32_t>(1, scaled);
    return out;
}

} // namespace hh::cache
