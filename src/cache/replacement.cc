#include "cache/replacement.h"

#include "cache/repl_cdp.h"
#include "cache/repl_hardharvest.h"
#include "cache/repl_lru.h"
#include "cache/repl_rrip.h"
#include "sim/log.h"

namespace hh::cache {

namespace detail {

unsigned
lruAmong(std::span<const WayState> ways, WayMask mask)
{
    unsigned best = static_cast<unsigned>(ways.size());
    std::uint64_t best_use = ~0ULL;
    for (unsigned w = 0; w < ways.size(); ++w) {
        if (!(mask & (WayMask{1} << w)))
            continue;
        if (ways[w].lastUse < best_use) {
            best_use = ways[w].lastUse;
            best = w;
        }
    }
    return best;
}

WayMask
invalidMask(std::span<const WayState> ways, WayMask allowed)
{
    WayMask m = 0;
    for (unsigned w = 0; w < ways.size(); ++w) {
        if ((allowed & (WayMask{1} << w)) && !ways[w].valid)
            m |= WayMask{1} << w;
    }
    return m;
}

} // namespace detail

std::unique_ptr<ReplacementPolicy>
makePolicy(ReplKind kind)
{
    switch (kind) {
      case ReplKind::LRU:
        return std::make_unique<LruPolicy>();
      case ReplKind::RRIP:
        return std::make_unique<RripPolicy>();
      case ReplKind::HardHarvest:
        return std::make_unique<HardHarvestPolicy>();
      case ReplKind::CDP:
        return std::make_unique<CdpPolicy>();
      case ReplKind::Belady:
        hh::sim::fatal("Belady requires an oracle; construct "
                       "BeladyPolicy directly (see repl_belady.h)");
    }
    hh::sim::panic("makePolicy: unknown kind");
}

} // namespace hh::cache
