#include "cache/hierarchy.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"
#include "sim/prof.h"
#include "stats/registry.h"

namespace hh::cache {

using hh::sim::Cycles;

namespace {

/** Fallback DRAM latency when no Dram model is attached. */
constexpr Cycles kFlatDramLatency = 200;

unsigned
harvestWayCount(const Geometry &g, double fraction)
{
    const auto n = static_cast<unsigned>(
        std::lround(fraction * static_cast<double>(g.ways)));
    // Keep at least one way on each side of the partition.
    return std::min(std::max(1u, n), g.ways - 1);
}

} // namespace

std::unique_ptr<SetAssocArray>
CoreHierarchy::makeArray(const Geometry &g) const
{
    const Geometry scaled = scaleWays(g, cfg_.waysFraction);
    auto arr = std::make_unique<SetAssocArray>(scaled,
                                               makePolicy(cfg_.repl));
    arr->setCandidateFraction(cfg_.candidateFraction);
    if (cfg_.partitioning && scaled.ways >= 2) {
        arr->setHarvestWayCount(
            harvestWayCount(scaled, cfg_.harvestWayFraction));
    }
    return arr;
}

CoreHierarchy::CoreHierarchy(const HierarchyConfig &cfg,
                             SetAssocArray *l3, hh::mem::Dram *dram)
    : cfg_(cfg), l3_(l3), dram_(dram)
{
    if (cfg.waysFraction <= 0.0 || cfg.waysFraction > 1.0)
        hh::sim::fatal("CoreHierarchy: waysFraction must be in (0, 1]");
    l1d_ = makeArray(cfg.l1d);
    l1i_ = makeArray(cfg.l1i);
    l2_ = makeArray(cfg.l2);
    l1tlb_ = makeArray(cfg.l1tlb);
    l2tlb_ = makeArray(cfg.l2tlb);
}

WayMask
CoreHierarchy::allowedMask(const SetAssocArray &arr, Cycles now) const
{
    if (!cfg_.partitioning)
        return arr.allWays();
    if (harvest_mode_)
        return arr.harvestWays() ? arr.harvestWays() : arr.allWays();
    // Primary mode: harvest ways stay hidden until the background
    // flush's worst-case bound has elapsed.
    if (now < harvest_visible_at_) {
        const WayMask m = arr.allWays() & ~arr.harvestWays();
        return m ? m : arr.allWays();
    }
    return arr.allWays();
}

Cycles
CoreHierarchy::access(Cycles now, const MemAccess &a)
{
    HH_PROF_SCOPE("cache.hierarchy_access");
    ++accesses_;
    Cycles lat = 0;

    const Addr line_key = a.page * kLinesPerPage + (a.line % kLinesPerPage);
    // Instruction pages always carry Shared=1 (§4.2.3).
    const bool shared = a.isInstr ? true : a.shared;

    if (cfg_.infinite) {
        // Infinite structures: only compulsory misses cost anything,
        // and the infinite (VM-shared) LLC supplies first touches,
        // so a line's first access pays an L2+L3 fill, not DRAM.
        lat += cfg_.l1tlb.latency;
        if (seen_pages_.insert(a.page).second)
            lat += cfg_.l2tlb.latency + cfg_.pageWalk;
        lat += (a.isInstr ? cfg_.l1i : cfg_.l1d).latency;
        if (seen_lines_.insert(line_key).second)
            lat += cfg_.l2.latency + kL3PerCore.latency;
        return lat;
    }

    // -------- Address translation --------
    lat += l1tlb_->geometry().latency;
    if (!l1tlb_->access(a.page, shared, allowedMask(*l1tlb_, now)).hit) {
        lat += l2tlb_->geometry().latency;
        if (!l2tlb_->access(a.page, shared, allowedMask(*l2tlb_, now))
                 .hit) {
            lat += cfg_.pageWalk;
        }
    }

    // -------- Data/instruction path --------
    SetAssocArray &l1 = a.isInstr ? *l1i_ : *l1d_;
    lat += l1.geometry().latency;
    if (l1.access(line_key, shared, allowedMask(l1, now), a.isInstr)
            .hit) {
        return lat;
    }

    lat += l2_->geometry().latency;
    if (l2_->access(line_key, shared, allowedMask(*l2_, now),
                    a.isInstr)
            .hit) {
        return lat;
    }

    if (l3_) {
        lat += l3_->geometry().latency;
        // Ways leased cross-VM (the L3 partition's harvest mask) are
        // reserved for the borrower; the owner fills around them.
        const WayMask own = l3_->allWays() & ~l3_->harvestWays();
        if (l3_->access(line_key, shared, own ? own : l3_->allWays())
                .hit) {
            return lat;
        }
    }

    // Leased ways borrowed from another VM's partition. No extra
    // latency: CAT way masks constrain fills, not lookups — the
    // leased ways sit in the same physical L3 slice the set index
    // already selected, so a hit here is an ordinary L3 hit.
    if (lease_l3_ && lease_l3_ways_) {
        if (lease_l3_->access(line_key, shared, lease_l3_ways_).hit)
            return lat;
    }

    lat += dram_ ? dram_->access(now, line_key, cfg_.accessWeight) : kFlatDramLatency;
    return lat;
}

void
CoreHierarchy::flushAll()
{
    l1d_->flushAll();
    l1i_->flushAll();
    l2_->flushAll();
    l1tlb_->flushAll();
    l2tlb_->flushAll();
    seen_lines_.clear();
    seen_pages_.clear();
}

void
CoreHierarchy::flushHarvestRegion(Cycles now, Cycles bound)
{
    if (!cfg_.partitioning) {
        flushAll();
        return;
    }
    l1d_->flushWays(l1d_->harvestWays());
    l1i_->flushWays(l1i_->harvestWays());
    l2_->flushWays(l2_->harvestWays());
    l1tlb_->flushWays(l1tlb_->harvestWays());
    l2tlb_->flushWays(l2tlb_->harvestWays());
    harvest_visible_at_ = now + bound;
}

void
CoreHierarchy::repartitionArray(SetAssocArray &arr, unsigned extraWays)
{
    if (arr.geometry().ways < 2)
        return;
    const WayMask old = arr.harvestWays();
    const unsigned base =
        harvestWayCount(arr.geometry(), cfg_.harvestWayFraction);
    arr.setHarvestWayCount(
        std::min(base + extraWays, arr.geometry().ways - 1));
    const WayMask leaving = old & ~arr.harvestWays();
    if (leaving)
        arr.flushWays(leaving);
}

void
CoreHierarchy::setHarvestWayFraction(double f)
{
    cfg_.harvestWayFraction = f;
    if (!cfg_.partitioning)
        return;
    for (SetAssocArray *arr : {l1d_.get(), l1i_.get(), l2_.get(),
                               l1tlb_.get(), l2tlb_.get()}) {
        repartitionArray(*arr, arr == l2_.get() ? l2_lease_bonus_ : 0);
    }
}

void
CoreHierarchy::setL2LeaseBonus(unsigned ways)
{
    l2_lease_bonus_ = ways;
    if (!cfg_.partitioning)
        return;
    repartitionArray(*l2_, ways);
}

void
CoreHierarchy::resetStats()
{
    l1d_->resetStats();
    l1i_->resetStats();
    l2_->resetStats();
    l1tlb_->resetStats();
    l2tlb_->resetStats();
    accesses_ = 0;
}

void
CoreHierarchy::registerMetrics(hh::stats::MetricRegistry &reg,
                               const std::string &prefix)
{
    l1d_->registerMetrics(reg, prefix + ".l1d");
    l1i_->registerMetrics(reg, prefix + ".l1i");
    l2_->registerMetrics(reg, prefix + ".l2");
    l1tlb_->registerMetrics(reg, prefix + ".l1tlb");
    l2tlb_->registerMetrics(reg, prefix + ".l2tlb");
    reg.registerCounter(prefix + ".accesses", accesses_);
}

} // namespace hh::cache
