#include "cache/repl_lru.h"

#include "sim/log.h"

namespace hh::cache {

unsigned
LruPolicy::victim(const SetContext &ctx, bool incoming_shared)
{
    (void)incoming_shared;
    if (ctx.lastUse) {
        // SoA fast path: masks are pre-clipped to the geometry.
        const WayMask inv = ctx.allowedMask & ~ctx.validMask;
        if (inv)
            return static_cast<unsigned>(std::countr_zero(inv));
        const unsigned v =
            detail::lruAmongFast(ctx.lastUse, ctx.allowedMask);
        if (v >= ctx.ways.size())
            hh::sim::panic("LruPolicy: empty allowed mask");
        return v;
    }
    const WayMask inv = detail::invalidMask(ctx.ways, ctx.allowedMask);
    if (inv) {
        // Any invalid slot; pick the lowest-index one for determinism.
        for (unsigned w = 0; w < ctx.ways.size(); ++w) {
            if (inv & (WayMask{1} << w))
                return w;
        }
    }
    const unsigned v = detail::lruAmong(ctx.ways, ctx.allowedMask);
    if (v >= ctx.ways.size())
        hh::sim::panic("LruPolicy: empty allowed mask");
    return v;
}

} // namespace hh::cache
