/**
 * @file
 * Per-core cache/TLB hierarchy with HardHarvest partitioning.
 *
 * A CoreHierarchy owns the core-private structures (L1I, L1D, L2,
 * L1 TLB, L2 TLB) and references a per-VM L3 partition (the LLC is
 * CAT-partitioned per VM, so VMs never interact there) and the
 * server's DRAM. It implements the paper's §4.2 semantics:
 *
 *  - way-partitioning into Harvest / Non-Harvest regions,
 *  - harvest-VM execution restricted to the harvest ways,
 *  - harvest-region-only flush with the ways hidden from the Primary
 *    VM until a fixed worst-case bound has elapsed (timing
 *    side-channel defense), and
 *  - full flush for the conventional wbinvd path.
 */

#ifndef HH_CACHE_HIERARCHY_H
#define HH_CACHE_HIERARCHY_H

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "cache/config.h"
#include "cache/set_assoc.h"
#include "mem/dram.h"
#include "sim/time.h"

namespace hh::cache {

/** Lines per page given the line and page sizes. */
inline constexpr std::uint64_t kLinesPerPage = kPageBytes / kLineBytes;

/**
 * One memory reference as produced by the workload generator.
 */
struct MemAccess
{
    Addr page = 0;          //!< Globally unique page id (includes VM).
    std::uint32_t line = 0; //!< Line within the page [0, 64).
    bool isInstr = false;   //!< Instruction-side access.
    bool shared = true;     //!< Page's Shared bit (§4.2.2).
};

/**
 * Hierarchy construction parameters.
 */
struct HierarchyConfig
{
    Geometry l1d = kL1D;
    Geometry l1i = kL1I;
    Geometry l2 = kL2;
    Geometry l1tlb = kL1Tlb;
    Geometry l2tlb = kL2Tlb;

    ReplKind repl = ReplKind::LRU;

    /** Eviction-candidate fraction M (§4.2.3); 0.75 in Table 1. */
    double candidateFraction = 1.0;

    /** Fraction of ways in the harvest region; 0.5 in Table 1. */
    double harvestWayFraction = 0.5;

    /** Enable harvest/non-harvest partitioning (HardHarvest only). */
    bool partitioning = false;

    /** Global way scaling for the Fig 7 sweep (1.0 = full size). */
    double waysFraction = 1.0;

    /** Model infinite caches/TLBs (only compulsory misses). */
    bool infinite = false;

    /** Cycles a page-table walk costs on an L2 TLB miss. */
    hh::sim::Cycles pageWalk = kPageWalkCycles;

    /**
     * Number of real accesses each access represents when the
     * caller replays a sampled stream (DRAM occupancy scaling).
     */
    unsigned accessWeight = 1;
};

/**
 * The private hierarchy of one core.
 */
class CoreHierarchy
{
  public:
    /**
     * @param cfg  Configuration; geometries are scaled by
     *             cfg.waysFraction internally.
     * @param l3   Per-VM L3 partition, or nullptr to go straight to
     *             DRAM. Re-bindable on VM switches via setL3().
     * @param dram Server DRAM model (must outlive the hierarchy), or
     *             nullptr to charge a fixed latency.
     */
    CoreHierarchy(const HierarchyConfig &cfg, SetAssocArray *l3,
                  hh::mem::Dram *dram);

    /**
     * Perform one memory access and return its total latency.
     *
     * @param now Current simulated time (DRAM queueing).
     * @param a   The access.
     */
    hh::sim::Cycles access(hh::sim::Cycles now, const MemAccess &a);

    /**
     * Switch between Primary (false) and Harvest (true) execution.
     * In harvest mode with partitioning enabled, fills are limited to
     * the harvest ways.
     */
    void setHarvestMode(bool on) { harvest_mode_ = on; }
    bool harvestMode() const { return harvest_mode_; }

    /** Rebind the L3 partition (on a VM switch). */
    void setL3(SetAssocArray *l3) { l3_ = l3; }

    /** Currently bound L3 partition (snapshot rebinding, tests). */
    SetAssocArray *l3Partition() const { return l3_; }

    /** @name Cross-VM cache leasing (src/lease/) @{ */
    /**
     * Bind a lender VM's L3 partition as overflow capacity for batch
     * work on this core: after a miss in the core's own L3 partition,
     * the leased ways of @p l3 are probed/filled before DRAM. Null
     * @p l3 (the default) disables the probe at the cost of one
     * untaken branch. The binding is derived scheduling state and is
     * *not* serialized — the owner recomputes it after restoring,
     * mirroring setL3().
     */
    void
    setLeaseL3(SetAssocArray *l3, WayMask ways)
    {
        lease_l3_ = l3;
        lease_l3_ways_ = ways;
    }
    SetAssocArray *leaseL3() const { return lease_l3_; }
    WayMask leaseL3Ways() const { return lease_l3_ways_; }

    /**
     * Extra private-L2 ways granted to the harvest region while this
     * core's VM leases cache capacity cross-VM. Folded into the L2
     * harvest mask on top of harvestWayFraction (clamped so the
     * primary region keeps at least one way); shrinking the bonus
     * flushes the departing ways, so no harvested line outlives its
     * lease. No-op on the masks unless partitioning is enabled.
     */
    void setL2LeaseBonus(unsigned ways);
    unsigned l2LeaseBonus() const { return l2_lease_bonus_; }
    /** @} */

    /** Flush and invalidate everything (wbinvd-style). */
    void flushAll();

    /**
     * Flush only the harvest region and hide those ways from the
     * Primary VM until @p now + @p bound (side-channel defense,
     * §4.2.1). No-op unless partitioning is enabled.
     */
    void flushHarvestRegion(hh::sim::Cycles now, hh::sim::Cycles bound);

    /**
     * Repartition the private structures to a new harvest-way
     * fraction (harvest-policy epoch boundary). Ways leaving the
     * harvest region are flushed so the Primary VM never inherits
     * Harvest-VM lines; ways entering it get flushed by the next
     * lend's flushHarvestRegion as usual. No-op on the way masks
     * unless partitioning is enabled.
     */
    void setHarvestWayFraction(double f);

    /** @name Structure access for statistics/tests @{ */
    SetAssocArray &l1d() { return *l1d_; }
    SetAssocArray &l1i() { return *l1i_; }
    SetAssocArray &l2() { return *l2_; }
    SetAssocArray &l1tlb() { return *l1tlb_; }
    SetAssocArray &l2tlb() { return *l2tlb_; }
    /** @} */

    /** Total accesses served. */
    std::uint64_t accesses() const { return accesses_; }

    /** Reset hit/miss statistics on all levels. */
    void resetStats();

    /**
     * Register every private structure's counters under
     * "<prefix>.l1d", "<prefix>.l2tlb", ... plus the access total.
     * The L3 partition is intentionally excluded: it is per-VM and
     * re-bindable, so its owner registers it.
     */
    void registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix);

    const HierarchyConfig &config() const { return cfg_; }

    /**
     * Save/restore every private structure plus the harvest-mode,
     * flush-bound and compulsory-miss state. The L3 binding (a raw
     * pointer into the owning server) is *not* serialized — the owner
     * rebinds it via setL3() after restoring, mirroring how it
     * re-binds on VM switches.
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(*l1d_);
        ar.io(*l1i_);
        ar.io(*l2_);
        ar.io(*l1tlb_);
        ar.io(*l2tlb_);
        ar.io(harvest_mode_);
        ar.io(harvest_visible_at_);
        ar.io(seen_lines_);
        ar.io(seen_pages_);
        ar.io(accesses_);
        ar.io(l2_lease_bonus_);
        // The policy mutates the harvest fraction at run time and a
        // lease grant/release recomputes the L2 base from it, so the
        // live value must survive a restore (the construction-time
        // config would silently shift the partition on the next
        // setL2LeaseBonus).
        ar.io(cfg_.harvestWayFraction);
    }

  private:
    /** Fill mask for a private structure given the current mode. */
    WayMask allowedMask(const SetAssocArray &arr,
                        hh::sim::Cycles now) const;

    std::unique_ptr<SetAssocArray> makeArray(const Geometry &g) const;

    /** Recompute one array's harvest mask, flushing departing ways. */
    void repartitionArray(SetAssocArray &arr, unsigned extraWays);

    HierarchyConfig cfg_;
    std::unique_ptr<SetAssocArray> l1d_;
    std::unique_ptr<SetAssocArray> l1i_;
    std::unique_ptr<SetAssocArray> l2_;
    std::unique_ptr<SetAssocArray> l1tlb_;
    std::unique_ptr<SetAssocArray> l2tlb_;
    SetAssocArray *l3_ = nullptr;
    hh::mem::Dram *dram_ = nullptr;

    /** Borrowed L3 overflow partition (cache lease), or null. */
    SetAssocArray *lease_l3_ = nullptr;
    WayMask lease_l3_ways_ = 0;
    /** Extra L2 harvest ways while this core's VM leases capacity. */
    unsigned l2_lease_bonus_ = 0;

    bool harvest_mode_ = false;
    /** Primary may use harvest ways again from this time on. */
    hh::sim::Cycles harvest_visible_at_ = 0;

    /** Compulsory-miss tracking for infinite mode. */
    std::unordered_set<Addr> seen_lines_;
    std::unordered_set<Addr> seen_pages_;

    std::uint64_t accesses_ = 0;
};

} // namespace hh::cache

#endif // HH_CACHE_HIERARCHY_H
