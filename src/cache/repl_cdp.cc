#include "cache/repl_cdp.h"

#include "sim/log.h"

namespace hh::cache {

namespace {

/** Mask of allowed ways whose valid entry is data (not instr). */
WayMask
dataEntryMask(const SetContext &ctx, WayMask among)
{
    WayMask m = 0;
    for (unsigned w = 0; w < ctx.ways.size(); ++w) {
        const WayMask bit = WayMask{1} << w;
        if ((among & bit) && ctx.ways[w].valid && !ctx.ways[w].instr)
            m |= bit;
    }
    return m;
}

} // namespace

unsigned
CdpPolicy::victim(const SetContext &ctx, bool incoming_shared)
{
    if (ctx.lastUse) {
        // SoA fast path; see HardHarvestPolicy::victim. CDP differs
        // only in protecting instruction entries instead of shared
        // ones.
        const WayMask allowed = ctx.allowedMask;
        const WayMask non_harvest = allowed & ~ctx.harvestMask;
        const WayMask harvest = allowed & ctx.harvestMask;

        const WayMask inv = allowed & ~ctx.validMask;
        if (inv) {
            const WayMask preferred =
                inv & (incoming_shared ? non_harvest : harvest);
            return static_cast<unsigned>(
                std::countr_zero(preferred ? preferred : inv));
        }

        const WayMask cand = ctx.candidateMask & allowed;
        const WayMask data = ctx.validMask & ~ctx.instrMask;
        const WayMask first_region =
            incoming_shared ? non_harvest : harvest;
        const WayMask second_region =
            incoming_shared ? harvest : non_harvest;

        WayMask victims = cand & first_region & data;
        if (!victims)
            victims = cand & second_region & data;
        if (!victims)
            victims = cand;
        if (!victims)
            victims = allowed;

        const unsigned v =
            detail::lruAmongFast(ctx.lastUse, victims);
        if (v >= ctx.ways.size())
            hh::sim::panic("CdpPolicy: empty allowed mask");
        return v;
    }

    // Strip out-of-range mask bits first (same degenerate-mask guard
    // as HardHarvestPolicy::victim): phantom ways beyond the set's
    // geometry would survive into `victims`, defeat the safety net,
    // and panic in lruAmong() despite valid in-range allowed ways.
    const WayMask in_range =
        ctx.ways.size() >= 64
            ? ~WayMask{0}
            : static_cast<WayMask>((WayMask{1} << ctx.ways.size()) - 1);
    const WayMask allowed = ctx.allowedMask & in_range;
    const WayMask non_harvest = allowed & ~ctx.harvestMask;
    const WayMask harvest = allowed & ctx.harvestMask;

    // Invalid slots first, same region preference as HardHarvest.
    const WayMask inv = detail::invalidMask(ctx.ways, allowed);
    if (inv) {
        const WayMask preferred =
            inv & (incoming_shared ? non_harvest : harvest);
        const WayMask pick_from = preferred ? preferred : inv;
        for (unsigned w = 0; w < ctx.ways.size(); ++w) {
            if (pick_from & (WayMask{1} << w))
                return w;
        }
    }

    // CDP's defining choice: protect instruction entries; evict data
    // entries first, regardless of their shared/private nature.
    const WayMask cand = ctx.candidateMask & allowed;
    const WayMask first_region = incoming_shared ? non_harvest : harvest;
    const WayMask second_region = incoming_shared ? harvest : non_harvest;

    WayMask victims = dataEntryMask(ctx, cand & first_region);
    if (!victims)
        victims = dataEntryMask(ctx, cand & second_region);
    if (!victims)
        victims = cand; // all candidates are instructions: plain LRU
    if (!victims)
        victims = allowed;

    const unsigned v = detail::lruAmong(ctx.ways, victims);
    if (v >= ctx.ways.size())
        hh::sim::panic("CdpPolicy: empty allowed mask");
    return v;
}

} // namespace hh::cache
