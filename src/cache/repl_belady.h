/**
 * @file
 * Belady's offline-optimal replacement (the "ideal" bar of Fig 14).
 *
 * Belady evicts the resident line whose next use lies farthest in the
 * future. That requires knowing the future, so this policy only works
 * in trace replay: a NextUseOracle is built from the complete access
 * trace up front, and the policy tracks its position in the trace as
 * accesses are replayed (each access produces exactly one touch() or
 * fill() call).
 */

#ifndef HH_CACHE_REPL_BELADY_H
#define HH_CACHE_REPL_BELADY_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/replacement.h"

namespace hh::cache {

/**
 * Precomputed next-use positions for every key in a trace.
 */
class NextUseOracle
{
  public:
    /** Build from the full, ordered trace of access keys. */
    explicit NextUseOracle(const std::vector<Addr> &trace);

    /**
     * Position of the first access to @p key strictly after @p pos.
     *
     * @return Trace position, or kNever if the key is not accessed
     *         again.
     */
    std::uint64_t nextUse(Addr key, std::uint64_t pos) const;

    static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  private:
    std::unordered_map<Addr, std::vector<std::uint64_t>> positions_;
};

/**
 * Offline-optimal replacement over a fixed trace.
 */
class BeladyPolicy : public ReplacementPolicy
{
  public:
    /** @param oracle Next-use oracle for the trace being replayed.
     *         Must outlive the policy. */
    explicit BeladyPolicy(const NextUseOracle &oracle)
        : oracle_(oracle)
    {}

    unsigned victim(const SetContext &ctx, bool incoming_shared) override;
    void touch(WayState &way, std::uint64_t tick) override;
    void fill(WayState &way, std::uint64_t tick) override;
    const char *name() const override { return "Belady"; }

    /** Current trace position (number of completed accesses). */
    std::uint64_t position() const { return pos_; }

  private:
    const NextUseOracle &oracle_;
    std::uint64_t pos_ = 0;
};

} // namespace hh::cache

#endif // HH_CACHE_REPL_BELADY_H
