/**
 * @file
 * Code-Data-Prioritization (CDP) style replacement.
 *
 * Section 6.3 of the paper evaluates whether prioritizing
 * *instruction* pages over data pages (as Intel CAT's CDP does)
 * beats the HardHarvest shared/private distinction — and finds it
 * does not (it *increases* tail latency by 8%). We implement the
 * CDP-style policy so that negative result can be reproduced: the
 * victim selection protects instruction entries and considers data
 * entries (shared or private alike) first.
 */

#ifndef HH_CACHE_REPL_CDP_H
#define HH_CACHE_REPL_CDP_H

#include "cache/replacement.h"

namespace hh::cache {

/**
 * CDP: instructions beat data; region preference as in HardHarvest.
 *
 * The per-entry `isInstr` distinction is approximated through the
 * fill-time flag recorded by the array (instruction entries always
 * arrive with Shared=1, and the policy is told through fillInstr()).
 */
class CdpPolicy : public ReplacementPolicy
{
  public:
    unsigned victim(const SetContext &ctx, bool incoming_shared) override;
    const char *name() const override { return "CDP"; }
    bool usesCandidates() const override { return true; }
};

} // namespace hh::cache

#endif // HH_CACHE_REPL_CDP_H
