#include "cache/set_assoc.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/log.h"
#include "sim/prof.h"
#include "stats/registry.h"

namespace hh::cache {

SetAssocArray::SetAssocArray(const Geometry &geom,
                             std::unique_ptr<ReplacementPolicy> policy)
    : geom_(geom), policy_(std::move(policy)),
      ways_(static_cast<std::size_t>(geom.sets) * geom.ways),
      tags_(static_cast<std::size_t>(geom.sets) * geom.ways),
      last_use_(static_cast<std::size_t>(geom.sets) * geom.ways),
      valid_bits_(geom.sets), shared_bits_(geom.sets),
      instr_bits_(geom.sets), candidate_count_(geom.ways)
{
    if (!policy_)
        hh::sim::panic("SetAssocArray: null policy");
    if (geom.ways == 0 || geom.ways > 64)
        hh::sim::fatal("SetAssocArray: ways must be in [1, 64], got ",
                       geom.ways);
    if (geom.sets == 0)
        hh::sim::fatal("SetAssocArray: sets must be > 0");
    all_ways_ = geom.ways == 64 ? ~WayMask{0}
                                : ((WayMask{1} << geom.ways) - 1);
    policy_uses_candidates_ = policy_->usesCandidates();
}

void
SetAssocArray::setHarvestWays(WayMask mask)
{
    harvest_mask_ = mask & all_ways_;
}

void
SetAssocArray::setHarvestWayCount(unsigned n)
{
    n = std::min<unsigned>(n, geom_.ways);
    setHarvestWays(n == 64 ? ~WayMask{0} : ((WayMask{1} << n) - 1));
}

void
SetAssocArray::setCandidateFraction(double f)
{
    if (f <= 0.0 || f > 1.0)
        hh::sim::fatal("SetAssocArray: candidate fraction must be in "
                       "(0, 1], got ", f);
    candidate_count_ = std::max<unsigned>(
        1, static_cast<unsigned>(
               std::lround(f * static_cast<double>(geom_.ways))));
}

std::uint32_t
SetAssocArray::setIndex(Addr key) const
{
    // Power-of-two fast path; otherwise modulo.
    if ((geom_.sets & (geom_.sets - 1)) == 0)
        return static_cast<std::uint32_t>(key & (geom_.sets - 1));
    return static_cast<std::uint32_t>(key % geom_.sets);
}

void
SetAssocArray::rebuildMirrors()
{
    for (std::uint32_t s = 0; s < geom_.sets; ++s) {
        const std::size_t si =
            static_cast<std::size_t>(s) * geom_.ways;
        WayMask valid = 0;
        WayMask shared = 0;
        WayMask instr = 0;
        for (unsigned w = 0; w < geom_.ways; ++w) {
            const WayState &ws = ways_[si + w];
            tags_[si + w] = ws.tag;
            last_use_[si + w] = ws.lastUse;
            const WayMask bit = WayMask{1} << w;
            if (ws.valid)
                valid |= bit;
            if (ws.shared)
                shared |= bit;
            if (ws.instr)
                instr |= bit;
        }
        valid_bits_[s] = valid;
        shared_bits_[s] = shared;
        instr_bits_[s] = instr;
    }
}

WayMask
SetAssocArray::candidateMask(std::uint32_t set, WayMask allowed) const
{
    if (candidate_count_ >= geom_.ways)
        return allowed;
    // Select the M least-recently-used allowed ways: repeatedly pick
    // the minimum lastUse, lowest way winning ties — exactly the
    // order a full selection sort would produce. The scan walks the
    // contiguous lastUse mirror and only the bits still remaining.
    const std::uint64_t *lu =
        &last_use_[static_cast<std::size_t>(set) * geom_.ways];
    WayMask mask = 0;
    unsigned chosen = 0;
    WayMask remaining = allowed;
    while (chosen < candidate_count_ && remaining) {
        unsigned best = 64;
        std::uint64_t best_use = ~0ULL;
        for (WayMask m = remaining; m; m &= m - 1) {
            const auto w =
                static_cast<unsigned>(std::countr_zero(m));
            if (lu[w] < best_use) {
                best_use = lu[w];
                best = w;
            }
        }
        if (best >= 64)
            break;
        mask |= WayMask{1} << best;
        remaining &= ~(WayMask{1} << best);
        ++chosen;
    }
    return mask;
}

AccessResult
SetAssocArray::access(Addr key, bool shared, WayMask allowed,
                      bool instr)
{
    HH_PROF_SCOPE("cache.array_access");
    allowed &= all_ways_;
    if (!allowed)
        hh::sim::panic("SetAssocArray::access: empty allowed mask");

    ++tick_;
    const std::uint32_t set = setIndex(key);
    const std::size_t si = static_cast<std::size_t>(set) * geom_.ways;
    AccessResult res;

    // Tag search over the contiguous mirror, valid ways only.
    const WayMask valid = valid_bits_[set];
    const Addr *tags = &tags_[si];
    for (WayMask m = valid; m; m &= m - 1) {
        const auto w = static_cast<unsigned>(std::countr_zero(m));
        if (tags[w] != key)
            continue;
        res.hit = true;
        res.way = w;
        WayState &hit = ways_[si + w];
        policy_->touch(hit, tick_);
        last_use_[si + w] = hit.lastUse;
        ++hits_;
        return res;
    }

    ++misses_;
    WayState *base = &ways_[si];
    SetContext ctx;
    ctx.ways = std::span<const WayState>(base, geom_.ways);
    ctx.harvestMask = harvest_mask_;
    ctx.allowedMask = allowed;
    ctx.setIndex = set;
    ctx.lastUse = &last_use_[si];
    ctx.validMask = valid;
    ctx.sharedMask = shared_bits_[set];
    ctx.instrMask = instr_bits_[set];
    // The M-LRU selection only matters to policies that read it
    // (HardHarvest/CDP), and those consult it only when every
    // allowed way is valid — an invalid way short-circuits victim
    // selection before candidates are looked at.
    ctx.candidateMask =
        (policy_uses_candidates_ && (allowed & ~valid) == 0)
            ? candidateMask(set, allowed)
            : allowed;

    const unsigned victim = policy_->victim(ctx, shared);
    if (victim >= geom_.ways)
        hh::sim::panic("SetAssocArray: policy returned way ", victim,
                       " of ", geom_.ways);
    WayState &slot = base[victim];
    if (slot.valid) {
        ++evictions_;
        res.evictedValid = true;
        res.victimShared = slot.shared;
    }
    slot.valid = true;
    slot.tag = key;
    slot.shared = shared;
    slot.instr = instr;
    policy_->fill(slot, tick_);

    const WayMask bit = WayMask{1} << victim;
    tags_[si + victim] = key;
    last_use_[si + victim] = slot.lastUse;
    valid_bits_[set] |= bit;
    shared_bits_[set] = shared ? (shared_bits_[set] | bit)
                               : (shared_bits_[set] & ~bit);
    instr_bits_[set] = instr ? (instr_bits_[set] | bit)
                             : (instr_bits_[set] & ~bit);
    res.way = victim;
    return res;
}

bool
SetAssocArray::probe(Addr key) const
{
    const std::uint32_t set = setIndex(key);
    const std::size_t si = static_cast<std::size_t>(set) * geom_.ways;
    const Addr *tags = &tags_[si];
    for (WayMask m = valid_bits_[set]; m; m &= m - 1) {
        const auto w = static_cast<unsigned>(std::countr_zero(m));
        if (tags[w] == key)
            return true;
    }
    return false;
}

void
SetAssocArray::flushAll()
{
    for (auto &w : ways_)
        w = WayState{};
    std::fill(tags_.begin(), tags_.end(), Addr{0});
    std::fill(last_use_.begin(), last_use_.end(), std::uint64_t{0});
    std::fill(valid_bits_.begin(), valid_bits_.end(), WayMask{0});
    std::fill(shared_bits_.begin(), shared_bits_.end(), WayMask{0});
    std::fill(instr_bits_.begin(), instr_bits_.end(), WayMask{0});
}

void
SetAssocArray::flushWays(WayMask mask)
{
    mask &= all_ways_;
    for (std::uint32_t s = 0; s < geom_.sets; ++s) {
        const std::size_t si =
            static_cast<std::size_t>(s) * geom_.ways;
        for (WayMask m = mask; m; m &= m - 1) {
            const auto w =
                static_cast<unsigned>(std::countr_zero(m));
            ways_[si + w] = WayState{};
            tags_[si + w] = 0;
            last_use_[si + w] = 0;
        }
        valid_bits_[s] &= ~mask;
        shared_bits_[s] &= ~mask;
        instr_bits_[s] &= ~mask;
    }
}

double
SetAssocArray::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
}

void
SetAssocArray::resetStats()
{
    hits_ = misses_ = evictions_ = 0;
}

void
SetAssocArray::registerMetrics(hh::stats::MetricRegistry &reg,
                               const std::string &prefix)
{
    reg.registerCounter(prefix + ".hits", hits_);
    reg.registerCounter(prefix + ".misses", misses_);
    reg.registerCounter(prefix + ".evictions", evictions_);
}

std::uint64_t
SetAssocArray::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &w : ways_)
        n += w.valid ? 1 : 0;
    return n;
}

std::uint64_t
SetAssocArray::validCountInWays(WayMask mask) const
{
    mask &= all_ways_;
    std::uint64_t n = 0;
    for (const WayMask valid : valid_bits_)
        n += static_cast<unsigned>(std::popcount(valid & mask));
    return n;
}

const WayState &
SetAssocArray::wayState(std::uint32_t set, unsigned way) const
{
    if (set >= geom_.sets || way >= geom_.ways)
        hh::sim::panic("SetAssocArray::wayState: out of range");
    return ways_[static_cast<std::size_t>(set) * geom_.ways + way];
}

} // namespace hh::cache
