#include "cache/set_assoc.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"
#include "stats/registry.h"

namespace hh::cache {

SetAssocArray::SetAssocArray(const Geometry &geom,
                             std::unique_ptr<ReplacementPolicy> policy)
    : geom_(geom), policy_(std::move(policy)),
      ways_(static_cast<std::size_t>(geom.sets) * geom.ways),
      candidate_count_(geom.ways)
{
    if (!policy_)
        hh::sim::panic("SetAssocArray: null policy");
    if (geom.ways == 0 || geom.ways > 64)
        hh::sim::fatal("SetAssocArray: ways must be in [1, 64], got ",
                       geom.ways);
    if (geom.sets == 0)
        hh::sim::fatal("SetAssocArray: sets must be > 0");
    all_ways_ = geom.ways == 64 ? ~WayMask{0}
                                : ((WayMask{1} << geom.ways) - 1);
}

void
SetAssocArray::setHarvestWays(WayMask mask)
{
    harvest_mask_ = mask & all_ways_;
}

void
SetAssocArray::setHarvestWayCount(unsigned n)
{
    n = std::min<unsigned>(n, geom_.ways);
    setHarvestWays(n == 64 ? ~WayMask{0} : ((WayMask{1} << n) - 1));
}

void
SetAssocArray::setCandidateFraction(double f)
{
    if (f <= 0.0 || f > 1.0)
        hh::sim::fatal("SetAssocArray: candidate fraction must be in "
                       "(0, 1], got ", f);
    candidate_count_ = std::max<unsigned>(
        1, static_cast<unsigned>(
               std::lround(f * static_cast<double>(geom_.ways))));
}

std::uint32_t
SetAssocArray::setIndex(Addr key) const
{
    // Power-of-two fast path; otherwise modulo.
    if ((geom_.sets & (geom_.sets - 1)) == 0)
        return static_cast<std::uint32_t>(key & (geom_.sets - 1));
    return static_cast<std::uint32_t>(key % geom_.sets);
}

WayState *
SetAssocArray::findTag(std::uint32_t set, Addr key)
{
    WayState *base = &ways_[static_cast<std::size_t>(set) * geom_.ways];
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (base[w].valid && base[w].tag == key)
            return &base[w];
    }
    return nullptr;
}

const WayState *
SetAssocArray::findTag(std::uint32_t set, Addr key) const
{
    return const_cast<SetAssocArray *>(this)->findTag(set, key);
}

WayMask
SetAssocArray::candidateMask(std::uint32_t set, WayMask allowed) const
{
    if (candidate_count_ >= geom_.ways)
        return allowed;
    // Select the M least-recently-used allowed ways. Associativity is
    // at most 16 in practice, so a simple selection loop is fine.
    const WayState *base =
        &ways_[static_cast<std::size_t>(set) * geom_.ways];
    WayMask mask = 0;
    unsigned chosen = 0;
    WayMask remaining = allowed;
    while (chosen < candidate_count_ && remaining) {
        unsigned best = geom_.ways;
        std::uint64_t best_use = ~0ULL;
        for (unsigned w = 0; w < geom_.ways; ++w) {
            const WayMask bit = WayMask{1} << w;
            if (!(remaining & bit))
                continue;
            if (base[w].lastUse < best_use) {
                best_use = base[w].lastUse;
                best = w;
            }
        }
        if (best >= geom_.ways)
            break;
        mask |= WayMask{1} << best;
        remaining &= ~(WayMask{1} << best);
        ++chosen;
    }
    return mask;
}

AccessResult
SetAssocArray::access(Addr key, bool shared, WayMask allowed,
                      bool instr)
{
    allowed &= all_ways_;
    if (!allowed)
        hh::sim::panic("SetAssocArray::access: empty allowed mask");

    ++tick_;
    const std::uint32_t set = setIndex(key);
    AccessResult res;

    if (WayState *hit = findTag(set, key)) {
        res.hit = true;
        res.way = static_cast<unsigned>(
            hit - &ways_[static_cast<std::size_t>(set) * geom_.ways]);
        policy_->touch(*hit, tick_);
        ++hits_;
        return res;
    }

    ++misses_;
    WayState *base = &ways_[static_cast<std::size_t>(set) * geom_.ways];
    SetContext ctx;
    ctx.ways = std::span<const WayState>(base, geom_.ways);
    ctx.harvestMask = harvest_mask_;
    ctx.allowedMask = allowed;
    ctx.candidateMask = candidateMask(set, allowed);
    ctx.setIndex = set;

    const unsigned victim = policy_->victim(ctx, shared);
    if (victim >= geom_.ways)
        hh::sim::panic("SetAssocArray: policy returned way ", victim,
                       " of ", geom_.ways);
    WayState &slot = base[victim];
    if (slot.valid) {
        ++evictions_;
        res.evictedValid = true;
        res.victimShared = slot.shared;
    }
    slot.valid = true;
    slot.tag = key;
    slot.shared = shared;
    slot.instr = instr;
    policy_->fill(slot, tick_);
    res.way = victim;
    return res;
}

bool
SetAssocArray::probe(Addr key) const
{
    return findTag(setIndex(key), key) != nullptr;
}

void
SetAssocArray::flushAll()
{
    for (auto &w : ways_)
        w = WayState{};
}

void
SetAssocArray::flushWays(WayMask mask)
{
    mask &= all_ways_;
    for (std::uint32_t s = 0; s < geom_.sets; ++s) {
        WayState *base = &ways_[static_cast<std::size_t>(s) * geom_.ways];
        for (unsigned w = 0; w < geom_.ways; ++w) {
            if (mask & (WayMask{1} << w))
                base[w] = WayState{};
        }
    }
}

double
SetAssocArray::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
}

void
SetAssocArray::resetStats()
{
    hits_ = misses_ = evictions_ = 0;
}

void
SetAssocArray::registerMetrics(hh::stats::MetricRegistry &reg,
                               const std::string &prefix)
{
    reg.registerCounter(prefix + ".hits", hits_);
    reg.registerCounter(prefix + ".misses", misses_);
    reg.registerCounter(prefix + ".evictions", evictions_);
}

std::uint64_t
SetAssocArray::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &w : ways_)
        n += w.valid ? 1 : 0;
    return n;
}

const WayState &
SetAssocArray::wayState(std::uint32_t set, unsigned way) const
{
    if (set >= geom_.sets || way >= geom_.ways)
        hh::sim::panic("SetAssocArray::wayState: out of range");
    return ways_[static_cast<std::size_t>(set) * geom_.ways + way];
}

} // namespace hh::cache
