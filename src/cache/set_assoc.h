/**
 * @file
 * Generic set-associative array used for every cache level and TLB.
 *
 * The array adds the two HardHarvest hardware bits on top of a
 * conventional tag array:
 *  - a per-entry Shared bit (copied from the page table, §4.2.2), and
 *  - a per-way Harvest bit (the HarvestMask region, §4.2.1),
 * plus selective flushing of only the harvest ways and the
 * eviction-candidate restriction used by the HardHarvest policy.
 *
 * Keys are opaque 64-bit values (line or page identifiers); callers
 * must embed the VM/address-space id in the key so distinct VMs never
 * alias.
 */

#ifndef HH_CACHE_SET_ASSOC_H
#define HH_CACHE_SET_ASSOC_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/config.h"
#include "cache/replacement.h"

namespace hh::stats {
class MetricRegistry;
}

namespace hh::cache {

/** Outcome of one array access. */
struct AccessResult
{
    bool hit = false;
    bool evictedValid = false; //!< A valid entry was displaced.
    bool victimShared = false; //!< ...and it was a shared entry.
    unsigned way = 0;          //!< Way hit or filled.
};

/**
 * A set-associative tag array with pluggable replacement.
 */
class SetAssocArray
{
  public:
    /**
     * @param geom   Structure geometry (ways must be <= 64).
     * @param policy Replacement policy instance (owned).
     */
    SetAssocArray(const Geometry &geom,
                  std::unique_ptr<ReplacementPolicy> policy);

    /**
     * Designate the harvest region.
     *
     * @param mask Way bitmask; bits >= ways are ignored.
     */
    void setHarvestWays(WayMask mask);

    /** Designate the lowest @p n ways as the harvest region. */
    void setHarvestWayCount(unsigned n);

    WayMask harvestWays() const { return harvest_mask_; }

    /**
     * Restrict eviction candidates to the given fraction of ways
     * (the paper's M parameter; default 1.0 considers all ways).
     */
    void setCandidateFraction(double f);

    /**
     * Look up @p key; on a miss, fill it, evicting per the policy.
     *
     * @param key     Structure-level key (line id or page id).
     * @param shared  Shared bit of the entry being accessed.
     * @param allowed Ways the requester may *fill*; lookups always
     *                scan all ways. Defaults to every way.
     * @param instr   Instruction-side entry (used by CDP).
     */
    AccessResult access(Addr key, bool shared,
                        WayMask allowed = ~WayMask{0},
                        bool instr = false);

    /** Look up without filling. */
    bool probe(Addr key) const;

    /** Invalidate every entry. */
    void flushAll();

    /** Invalidate entries in the given ways of every set. */
    void flushWays(WayMask mask);

    /** @name Statistics @{ */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    double hitRate() const;
    void resetStats();

    /**
     * Register hit/miss/eviction counters under
     * "<prefix>.hits" etc. The array must outlive the registry's
     * users (snapshots read through the registered callbacks).
     */
    void registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix);
    /** @} */

    const Geometry &geometry() const { return geom_; }
    ReplacementPolicy &policy() { return *policy_; }

    /** Number of valid entries across the array (tests). */
    std::uint64_t validCount() const;

    /**
     * Number of valid entries within the given ways (partition-move
     * tests, cache-lease flush accounting).
     */
    std::uint64_t validCountInWays(WayMask mask) const;

    /**
     * Visit every valid entry in the given ways as fn(set, way, tag).
     * Walks the packed valid/tag mirrors, so the lease auditor can
     * scan returned ways without touching the WayState records.
     */
    template <typename Fn>
    void
    forEachValidInWays(WayMask mask, Fn &&fn) const
    {
        mask &= all_ways_;
        if (!mask)
            return;
        for (std::uint32_t s = 0; s < geom_.sets; ++s) {
            const std::size_t si =
                static_cast<std::size_t>(s) * geom_.ways;
            for (WayMask m = valid_bits_[s] & mask; m; m &= m - 1) {
                const auto w = static_cast<unsigned>(
                    std::countr_zero(m));
                fn(s, w, tags_[si + w]);
            }
        }
    }

    /** Per-way inspection hook for tests. */
    const WayState &wayState(std::uint32_t set, unsigned way) const;

    /** Mask covering all ways of this array. */
    WayMask allWays() const { return all_ways_; }

    /**
     * Save/restore contents and statistics. The restoring side must
     * have constructed the array with the same geometry and policy
     * kind; the online policies are stateless beyond the per-way
     * metadata (Belady is offline-only and not checkpointable).
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(ways_);
        ar.io(harvest_mask_);
        ar.io(candidate_count_);
        ar.io(tick_);
        ar.io(hits_);
        ar.io(misses_);
        ar.io(evictions_);
        if (ar.loading())
            rebuildMirrors();
    }

  private:
    std::uint32_t setIndex(Addr key) const;

    /** Compute the M-least-recently-used candidate mask for a set. */
    WayMask candidateMask(std::uint32_t set, WayMask allowed) const;

    /** Recompute the SoA mirrors from ways_ (snapshot load). */
    void rebuildMirrors();

    Geometry geom_;
    std::unique_ptr<ReplacementPolicy> policy_;
    /**
     * Authoritative per-way state, sets * ways row-major. The
     * serialized encoding reads this array only, so the mirrors
     * below never appear in (and cannot break) checkpoints.
     */
    std::vector<WayState> ways_;
    /**
     * @name Struct-of-arrays mirrors of ways_
     *
     * The access hot path is tag search plus lastUse scans; striding
     * 32-byte WayState records for those touches 8 cache lines per
     * 16-way set. The mirrors pack tags and LRU timestamps
     * contiguously and fold the boolean columns into per-set
     * bitmaps, and are kept in sync on every fill/touch/flush.
     * @{
     */
    std::vector<Addr> tags_;             //!< sets * ways.
    std::vector<std::uint64_t> last_use_; //!< sets * ways.
    std::vector<WayMask> valid_bits_;    //!< one mask per set.
    std::vector<WayMask> shared_bits_;   //!< one mask per set.
    std::vector<WayMask> instr_bits_;    //!< one mask per set.
    /** @} */
    WayMask harvest_mask_ = 0;
    WayMask all_ways_ = 0;
    unsigned candidate_count_; //!< M as an absolute way count.
    /** Cached policy_->usesCandidates() (virtual call per miss). */
    bool policy_uses_candidates_ = false;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace hh::cache

#endif // HH_CACHE_SET_ASSOC_H
