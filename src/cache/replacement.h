/**
 * @file
 * Replacement-policy interface shared by caches and TLBs.
 *
 * A policy sees one set at a time through SetContext: the per-way
 * state, which ways are harvest ways (HarvestMask), which ways the
 * current requester may use, and — for the HardHarvest policy — the
 * eviction-candidate subset (the M least-recently-used ways, paper
 * Section 4.2.3).
 */

#ifndef HH_CACHE_REPLACEMENT_H
#define HH_CACHE_REPLACEMENT_H

#include <bit>
#include <cstdint>
#include <memory>
#include <span>

#include "cache/config.h"
#include "snapshot/archive.h"

namespace hh::cache {

/**
 * Per-way bookkeeping kept by the set-associative array.
 */
struct WayState
{
    bool valid = false;
    Addr tag = 0;
    bool shared = false;        //!< Paper's per-entry Shared bit.
    bool instr = false;         //!< Instruction-side entry (CDP).
    std::uint64_t lastUse = 0;  //!< LRU timestamp (array access tick).
    std::uint8_t rrpv = 3;      //!< RRIP re-reference prediction value.

    /**
     * Full per-way state; all replacement metadata the online
     * policies (LRU/RRIP/CDP/HardHarvest) consult lives here, so
     * serializing the way array checkpoints the policy state too.
     */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(valid);
        ar.io(tag);
        ar.io(shared);
        ar.io(instr);
        ar.io(lastUse);
        ar.io(rrpv);
    }
};

/**
 * Everything a policy may inspect when choosing a victim in one set.
 */
struct SetContext
{
    std::span<const WayState> ways; //!< All ways of the set.
    WayMask harvestMask = 0;        //!< Ways in the harvest region.
    WayMask allowedMask = 0;        //!< Ways the requester may fill.
    WayMask candidateMask = 0;      //!< Eviction candidates (valid ways).
    std::uint64_t setIndex = 0;     //!< Which set (Belady oracle key).

    /**
     * @name Struct-of-arrays fast path (set by SetAssocArray)
     *
     * When `lastUse` is non-null it points at the set's contiguous
     * per-way LRU timestamps and the three bitmap fields below are
     * populated, with every mask (including allowedMask and
     * candidateMask) already clipped to the set's geometry. Policies
     * then pick victims from bitmaps and one flat array instead of
     * striding through 32-byte WayState records. A null `lastUse`
     * (direct construction in tests) selects the original
     * span-walking path; both paths compute identical victims.
     * @{
     */
    const std::uint64_t *lastUse = nullptr;
    WayMask validMask = 0;  //!< Ways holding a valid entry.
    WayMask sharedMask = 0; //!< Ways whose valid entry is Shared.
    WayMask instrMask = 0;  //!< Ways whose valid entry is I-side.
    /** @} */
};

/**
 * Abstract victim-selection and metadata-update policy.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /**
     * Choose the way that should receive an incoming entry.
     *
     * Invalid allowed ways are always preferred; the array guarantees
     * that ctx.allowedMask is non-zero.
     *
     * @param ctx            The set being filled.
     * @param incoming_shared Shared bit of the incoming entry.
     * @return Way index in [0, ways).
     */
    virtual unsigned victim(const SetContext &ctx,
                            bool incoming_shared) = 0;

    /** Metadata update on a hit. */
    virtual void
    touch(WayState &way, std::uint64_t tick)
    {
        way.lastUse = tick;
    }

    /** Metadata update on a fill (after victim selection). */
    virtual void
    fill(WayState &way, std::uint64_t tick)
    {
        way.lastUse = tick;
    }

    /** Human-readable policy name. */
    virtual const char *name() const = 0;

    /**
     * True when victim() reads ctx.candidateMask. Lets the array
     * skip the M-least-recently-used selection entirely for
     * policies (LRU, RRIP, Belady) that never look at it.
     */
    virtual bool usesCandidates() const { return false; }
};

/**
 * Create a policy instance by kind.
 *
 * @param kind Selector; Belady instances must instead be built
 *             directly with their oracle (see repl_belady.h) and
 *             requesting it here is a usage error.
 */
std::unique_ptr<ReplacementPolicy> makePolicy(ReplKind kind);

namespace detail {

/** Pick the LRU way among @p mask; returns ways count if mask empty. */
unsigned lruAmong(std::span<const WayState> ways, WayMask mask);

/** Mask of invalid ways within @p allowed. */
WayMask invalidMask(std::span<const WayState> ways, WayMask allowed);

/**
 * lruAmong over a contiguous lastUse array (SoA fast path); visits
 * only the set bits of @p mask, lowest index winning ties exactly
 * like lruAmong. Returns 64 when @p mask is empty.
 */
inline unsigned
lruAmongFast(const std::uint64_t *lastUse, WayMask mask)
{
    unsigned best = 64;
    std::uint64_t best_use = ~0ULL;
    for (WayMask m = mask; m; m &= m - 1) {
        const auto w =
            static_cast<unsigned>(std::countr_zero(m));
        if (lastUse[w] < best_use) {
            best_use = lastUse[w];
            best = w;
        }
    }
    return best;
}

} // namespace detail

} // namespace hh::cache

#endif // HH_CACHE_REPLACEMENT_H
