/**
 * @file
 * The HardHarvest replacement policy (paper Algorithm 1, Section
 * 4.2.3, with the priority-multiplexer formulation of Section 4.2.4
 * and the eviction-candidate restriction).
 *
 * Intent: steer Shared entries toward the Non-Harvest ways (state
 * that survives harvesting) and Private entries toward the Harvest
 * ways, while restricting victim choice among valid entries to the M
 * least-recently-used ways of the set ("eviction candidates") so
 * popular private data is not starved of associativity.
 */

#ifndef HH_CACHE_REPL_HARDHARVEST_H
#define HH_CACHE_REPL_HARDHARVEST_H

#include "cache/replacement.h"

namespace hh::cache {

/**
 * Algorithm 1 of the paper.
 *
 * Victim priority for an incoming *shared* entry:
 *   1. Invalid and Non-Harvest way
 *   2. Invalid way
 *   3. Non-Harvest way holding a private entry
 *   4. Harvest way holding a private entry
 *   5. any way (all-shared fallback; LRU picks)
 *
 * Victim priority for an incoming *private* entry:
 *   1. Invalid and Harvest way
 *   2. Invalid way
 *   3. Harvest way holding a private entry
 *   4. Non-Harvest way holding a private entry
 *   5. any way (all-shared fallback; LRU picks)
 *
 * Classes 3-5 only consider ways in ctx.candidateMask (the M
 * least-recently-used allowed ways); within a class LRU breaks ties.
 * Invalid ways (classes 1-2) ignore the candidate restriction, as
 * taking an empty slot evicts nothing.
 */
class HardHarvestPolicy : public ReplacementPolicy
{
  public:
    unsigned victim(const SetContext &ctx, bool incoming_shared) override;
    const char *name() const override { return "HardHarvest"; }
    bool usesCandidates() const override { return true; }
};

} // namespace hh::cache

#endif // HH_CACHE_REPL_HARDHARVEST_H
