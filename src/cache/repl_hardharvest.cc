#include "cache/repl_hardharvest.h"

#include "sim/log.h"

namespace hh::cache {

namespace {

/** Mask of allowed ways whose valid entry is private. */
WayMask
privateEntryMask(const SetContext &ctx, WayMask among)
{
    WayMask m = 0;
    for (unsigned w = 0; w < ctx.ways.size(); ++w) {
        const WayMask bit = WayMask{1} << w;
        if ((among & bit) && ctx.ways[w].valid && !ctx.ways[w].shared)
            m |= bit;
    }
    return m;
}

} // namespace

unsigned
HardHarvestPolicy::victim(const SetContext &ctx, bool incoming_shared)
{
    if (ctx.lastUse) {
        // SoA fast path: every mask is pre-clipped to the set's
        // geometry, and validity/sharedness come as bitmaps, so the
        // five priority classes reduce to mask algebra plus one
        // lruAmongFast scan. Mirrors the span path below exactly.
        const WayMask allowed = ctx.allowedMask;
        const WayMask non_harvest = allowed & ~ctx.harvestMask;
        const WayMask harvest = allowed & ctx.harvestMask;

        const WayMask inv = allowed & ~ctx.validMask;
        if (inv) {
            const WayMask preferred =
                inv & (incoming_shared ? non_harvest : harvest);
            return static_cast<unsigned>(
                std::countr_zero(preferred ? preferred : inv));
        }

        const WayMask cand = ctx.candidateMask & allowed;
        const WayMask priv = ctx.validMask & ~ctx.sharedMask;
        const WayMask first_region =
            incoming_shared ? non_harvest : harvest;
        const WayMask second_region =
            incoming_shared ? harvest : non_harvest;

        WayMask victims = cand & first_region & priv;
        if (!victims)
            victims = cand & second_region & priv;
        if (!victims)
            victims = cand;
        if (!victims)
            victims = allowed;

        const unsigned v =
            detail::lruAmongFast(ctx.lastUse, victims);
        if (v >= ctx.ways.size())
            hh::sim::panic("HardHarvestPolicy: empty allowed mask");
        return v;
    }

    // Strip mask bits beyond the set's geometry first. A caller-side
    // mask wider than the set (e.g. a HarvestMask programmed for a
    // larger structure, or a candidate mask carried across a way
    // rescale) would otherwise leave phantom ways in `victims`:
    // lruAmong() ignores out-of-range bits, so a victims mask whose
    // only bits are out of range defeats the class-5/safety-net
    // fallbacks and turns into a spurious "empty allowed mask" panic
    // even though in-range allowed ways exist.
    const WayMask in_range =
        ctx.ways.size() >= 64
            ? ~WayMask{0}
            : static_cast<WayMask>((WayMask{1} << ctx.ways.size()) - 1);
    const WayMask allowed = ctx.allowedMask & in_range;
    const WayMask non_harvest = allowed & ~ctx.harvestMask;
    const WayMask harvest = allowed & ctx.harvestMask;

    // Classes 1-2: invalid slots, preferred region first. These are
    // exempt from the eviction-candidate restriction (nothing is
    // evicted when filling an empty slot).
    const WayMask inv = detail::invalidMask(ctx.ways, allowed);
    if (inv) {
        const WayMask preferred =
            inv & (incoming_shared ? non_harvest : harvest);
        const WayMask pick_from = preferred ? preferred : inv;
        for (unsigned w = 0; w < ctx.ways.size(); ++w) {
            if (pick_from & (WayMask{1} << w))
                return w;
        }
    }

    // Classes 3-4: private entries, region order depends on the
    // incoming entry's type; restricted to eviction candidates.
    const WayMask cand = ctx.candidateMask & allowed;
    const WayMask first_region = incoming_shared ? non_harvest : harvest;
    const WayMask second_region = incoming_shared ? harvest : non_harvest;

    WayMask victims = privateEntryMask(ctx, cand & first_region);
    if (!victims)
        victims = privateEntryMask(ctx, cand & second_region);

    // Class 5: every candidate holds a shared entry; LRU among them.
    if (!victims)
        victims = cand;

    // Safety net: a degenerate candidate mask (e.g. all candidates
    // outside the allowed region) falls back to plain LRU over
    // allowed ways.
    if (!victims)
        victims = allowed;

    const unsigned v = detail::lruAmong(ctx.ways, victims);
    if (v >= ctx.ways.size())
        hh::sim::panic("HardHarvestPolicy: empty allowed mask");
    return v;
}

} // namespace hh::cache
