#include "mem/dram.h"

#include <algorithm>

#include "sim/log.h"
#include "stats/registry.h"

namespace hh::mem {

using hh::sim::Cycles;

Dram::Dram(const DramConfig &cfg) : cfg_(cfg)
{
    if (cfg.controllers == 0)
        hh::sim::fatal("Dram: need at least one controller");
    if (cfg.window == 0)
        hh::sim::fatal("Dram: window must be positive");
}

const Dram::Window *
Dram::findWindow(std::uint64_t id) const
{
    const Window &w = ring_[id % kRing];
    return w.id == id ? &w : nullptr;
}

Dram::Window &
Dram::touchWindow(std::uint64_t id)
{
    Window &w = ring_[id % kRing];
    if (w.id != id) {
        w.id = id;
        w.busy = 0;
    }
    return w;
}

double
Dram::utilization(Cycles now) const
{
    const std::uint64_t id = now / cfg_.window;
    // Blend the previous (complete) window with the current partial
    // one so utilization responds to bursts without discontinuities.
    double busy = 0;
    if (const Window *prev = id ? findWindow(id - 1) : nullptr)
        busy += static_cast<double>(prev->busy);
    if (const Window *cur = findWindow(id))
        busy += static_cast<double>(cur->busy);
    const double capacity = 2.0 *
                            static_cast<double>(cfg_.window) *
                            static_cast<double>(cfg_.controllers);
    return std::min(cfg_.maxRho, busy / capacity);
}

Cycles
Dram::access(Cycles now, hh::cache::Addr key, unsigned weight)
{
    (void)key;
    const double rho = utilization(now);
    // M/D/1 expected waiting time: service * rho / (2 * (1 - rho)).
    const double service =
        static_cast<double>(cfg_.servicePerAccess);
    const auto queue_delay = static_cast<Cycles>(
        service * rho / (2.0 * (1.0 - rho)));

    touchWindow(now / cfg_.window).busy +=
        cfg_.servicePerAccess * std::max(1u, weight);

    ++accesses_;
    total_queue_delay_ += queue_delay;
    return cfg_.baseLatency + queue_delay;
}

double
Dram::avgQueueDelay() const
{
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(total_queue_delay_) /
                                static_cast<double>(accesses_);
}

void
Dram::resetStats()
{
    accesses_ = 0;
    total_queue_delay_ = 0;
}

void
Dram::registerMetrics(hh::stats::MetricRegistry &reg,
                      const std::string &prefix,
                      std::function<hh::sim::Cycles()> now)
{
    reg.registerCounter(prefix + ".accesses", accesses_);
    reg.registerGauge(prefix + ".queue_delay.avg",
                      [this] { return avgQueueDelay(); },
                      [this] { resetStats(); });
    reg.registerGauge(prefix + ".util", [this, now = std::move(now)] {
        return utilization(now());
    });
}

} // namespace hh::mem
