/**
 * @file
 * Main-memory latency/bandwidth model.
 *
 * Table 1: 128 GB DDR4-3200 behind 4 memory controllers with
 * 102.4 GB/s per socket. Cores replay their (sampled) access streams
 * along per-request time cursors, so accesses arrive with slightly
 * out-of-order timestamps; a strict busy-until-server queue would be
 * poisoned by that. Instead we use a windowed open-queue model: the
 * controller utilization rho is measured over fixed windows of
 * simulated time and each access pays the M/D/1-style expected
 * queueing delay  service * rho / (2 * (1 - rho))  on top of the
 * device latency. One 64 B line at 25.6 GB/s per controller occupies
 * a controller for 2.5 ns (~8 cycles at 3 GHz).
 */

#ifndef HH_MEM_DRAM_H
#define HH_MEM_DRAM_H

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "cache/config.h"
#include "sim/time.h"
#include "snapshot/archive.h"

namespace hh::stats {
class MetricRegistry;
}

namespace hh::mem {

/** DRAM model parameters. */
struct DramConfig
{
    /** Device access latency (row activation + CAS + transfer). */
    hh::sim::Cycles baseLatency = 180; // ~60 ns at 3 GHz
    /** Number of independent memory controllers. */
    unsigned controllers = 4;
    /** Controller occupancy per 64 B access. */
    hh::sim::Cycles servicePerAccess = 8; // ~2.5 ns
    /** Utilization measurement window. */
    hh::sim::Cycles window = 90'000; // 30 us
    /** Utilization cap for the queueing formula (stability). */
    double maxRho = 0.95;
};

/**
 * Bandwidth-limited DRAM behind multiple controllers.
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg = DramConfig{});

    /**
     * Perform one line access.
     *
     * @param now    Simulated time of the access (cursor time).
     * @param key    Line identifier (kept for interface stability).
     * @param weight Number of real accesses this sampled access
     *               represents (bandwidth accounting).
     * @return Latency (device + modelled queueing) of one access.
     */
    hh::sim::Cycles access(hh::sim::Cycles now, hh::cache::Addr key,
                           unsigned weight = 1);

    /** Utilization (rho) measured in the window preceding @p now. */
    double utilization(hh::sim::Cycles now) const;

    /** @name Statistics @{ */
    std::uint64_t accesses() const { return accesses_; }
    double avgQueueDelay() const;
    void resetStats();

    /**
     * Register "<prefix>.accesses", "<prefix>.queue_delay.avg" and
     * the windowed-utilization gauge "<prefix>.util".
     *
     * @param now Simulated-time source for the utilization gauge;
     *            passed by value as a std::function-compatible
     *            callable returning Cycles.
     */
    void registerMetrics(hh::stats::MetricRegistry &reg,
                         const std::string &prefix,
                         std::function<hh::sim::Cycles()> now);
    /** @} */

    const DramConfig &config() const { return cfg_; }

    /** Save/restore the utilization ring and statistics. */
    void
    serialize(hh::snap::Archive &ar)
    {
        ar.io(ring_);
        ar.io(accesses_);
        ar.io(total_queue_delay_);
    }

  private:
    /** Ring slot holding busy cycles for one utilization window. */
    struct Window
    {
        std::uint64_t id = ~std::uint64_t{0};
        std::uint64_t busy = 0;

        void
        serialize(hh::snap::Archive &ar)
        {
            ar.io(id);
            ar.io(busy);
        }
    };

    static constexpr std::size_t kRing = 64;

    const Window *findWindow(std::uint64_t id) const;
    Window &touchWindow(std::uint64_t id);

    DramConfig cfg_;
    std::array<Window, kRing> ring_;
    std::uint64_t accesses_ = 0;
    std::uint64_t total_queue_delay_ = 0;
};

} // namespace hh::mem

#endif // HH_MEM_DRAM_H
