/**
 * @file
 * Cross-VM cache-capacity leasing (the second harvest dimension).
 *
 * HardHarvest harvests idle *cores*; this subsystem harvests idle
 * cache *capacity* the same way. A per-server CacheLeaseManager lends
 * an idle Primary VM's resources to the batch (Harvest) VM under an
 * explicit lease:
 *
 *  - an L3 CAT-partition slice: the low `cacheLendL3Ways` ways of the
 *    lender's private L3 partition are marked as that partition's
 *    harvest region, the owner fills around them, and batch-running
 *    cores probe/fill them as overflow capacity after missing in
 *    their own partition;
 *  - private L2 ways: the lender's cores widen their L2 harvest
 *    region by an extra way bonus, so batch work running on lent
 *    cores sees more private capacity.
 *
 * The lifecycle mirrors the paper's §4.2 harvest-region semantics:
 * grant (leased ways flushed so the borrower starts clean) -> use ->
 * recall or term expiry -> flush-on-return (every borrower line in
 * the leased ways is invalidated before the owner reclaims them).
 * The auditor's "lease" invariant checks the return half: no
 * harvested line may outlive its lease.
 *
 * The manager is pure mechanism. Deciding *which* VMs lend and when
 * is the owner's job (ServerSim::leaseTick, driven by the policy
 * subsystem's per-VM cache-lend decisions).
 */

#ifndef HH_LEASE_CACHE_LEASE_H
#define HH_LEASE_CACHE_LEASE_H

#include <bit>
#include <cstdint>
#include <vector>

#include "cache/set_assoc.h"
#include "sim/time.h"
#include "snapshot/archive.h"

namespace hh::lease {

/**
 * Per-server lease bookkeeping over the primary VMs' L3 partitions.
 */
class CacheLeaseManager
{
  public:
    /** One VM's lease slot. */
    struct Lease
    {
        bool active = false;
        /** L3 ways currently leased to the batch VM. */
        hh::cache::WayMask l3Ways = 0;
        /** Extra private-L2 harvest ways on the lender's cores. */
        std::uint32_t l2Bonus = 0;
        hh::sim::Cycles grantedAt = 0;
        hh::sim::Cycles expiresAt = 0;
        /**
         * Every way this VM has ever leased out. Ways in
         * `everLeased & ~l3Ways` have been returned — the auditor
         * scans them for borrower lines that outlived their lease.
         */
        hh::cache::WayMask everLeased = 0;

        void
        serialize(hh::snap::Archive &ar)
        {
            ar.io(active);
            ar.io(l3Ways);
            ar.io(l2Bonus);
            ar.io(grantedAt);
            ar.io(expiresAt);
            ar.io(everLeased);
        }
    };

    /**
     * @param vms  Primary-VM count (lease slots).
     * @param term Cycles after which a grant auto-expires.
     */
    CacheLeaseManager(unsigned vms, hh::sim::Cycles term);

    /**
     * Grant a lease on @p vm's partition: flush the leased ways (the
     * borrower starts clean), mark them as the partition's harvest
     * region and start the term clock.
     *
     * @return Lender lines evicted by the handoff flush.
     */
    std::uint64_t grant(unsigned vm, hh::cache::SetAssocArray &l3,
                        hh::sim::Cycles now, hh::cache::WayMask ways,
                        std::uint32_t l2Bonus);

    /**
     * End @p vm's lease (policy recall or term expiry): flush every
     * borrower line out of the leased ways (flush-on-return) and
     * hand the ways back to the owner.
     *
     * @return Borrower lines invalidated by the return flush.
     */
    std::uint64_t release(unsigned vm, hh::cache::SetAssocArray &l3,
                          hh::sim::Cycles now, bool expired);

    bool active(unsigned vm) const { return leases_[vm].active; }

    /** Lease past its term (lazy expiry at the next lease tick). */
    bool
    expired(unsigned vm, hh::sim::Cycles now) const
    {
        return leases_[vm].active && now >= leases_[vm].expiresAt;
    }

    const Lease &lease(unsigned vm) const { return leases_[vm]; }

    unsigned vmCount() const { return static_cast<unsigned>(leases_.size()); }

    /** Active lender VM ids, ascending (deterministic binding order). */
    std::vector<unsigned> activeLenders() const;

    /** Total L3 ways currently leased out across all VMs. */
    unsigned
    lentL3Ways() const
    {
        unsigned n = 0;
        for (const Lease &l : leases_)
            if (l.active)
                n += static_cast<unsigned>(std::popcount(l.l3Ways));
        return n;
    }

    /** @name Lifetime counters @{ */
    std::uint64_t grants() const { return grants_; }
    std::uint64_t recalls() const { return recalls_; }
    std::uint64_t expiries() const { return expiries_; }
    /** Lines invalidated by handoff + return flushes. */
    std::uint64_t flushedLines() const { return flushed_lines_; }
    /** Integrated leased-way-cycles (capacity actually lent). */
    std::uint64_t
    wayCycles(hh::sim::Cycles now) const
    {
        return way_cycles_ +
               static_cast<std::uint64_t>(lentL3Ways()) *
                   (now - last_accrue_);
    }
    /** @} */

    /**
     * Save/restore lease slots and counters. The L3 harvest masks
     * live in the partitions themselves (serialized with their VM);
     * core-side lease bindings are derived state the owner recomputes
     * after restoring.
     */
    void serialize(hh::snap::Archive &ar);

  private:
    /** Fold elapsed leased-way-cycles into way_cycles_. */
    void accrue(hh::sim::Cycles now);

    hh::sim::Cycles term_;
    std::vector<Lease> leases_;
    std::uint64_t grants_ = 0;
    std::uint64_t recalls_ = 0;
    std::uint64_t expiries_ = 0;
    std::uint64_t flushed_lines_ = 0;
    std::uint64_t way_cycles_ = 0;
    hh::sim::Cycles last_accrue_ = 0;
};

} // namespace hh::lease

#endif // HH_LEASE_CACHE_LEASE_H
