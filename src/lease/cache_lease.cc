#include "lease/cache_lease.h"

#include "sim/log.h"

namespace hh::lease {

using hh::cache::SetAssocArray;
using hh::cache::WayMask;
using hh::sim::Cycles;

CacheLeaseManager::CacheLeaseManager(unsigned vms, Cycles term)
    : term_(term), leases_(vms)
{
}

void
CacheLeaseManager::accrue(Cycles now)
{
    way_cycles_ += static_cast<std::uint64_t>(lentL3Ways()) *
                   (now - last_accrue_);
    last_accrue_ = now;
}

std::uint64_t
CacheLeaseManager::grant(unsigned vm, SetAssocArray &l3, Cycles now,
                         WayMask ways, std::uint32_t l2Bonus)
{
    if (vm >= leases_.size())
        hh::sim::panic("CacheLeaseManager::grant: vm ", vm, " of ",
                       leases_.size());
    Lease &l = leases_[vm];
    if (l.active)
        hh::sim::panic("CacheLeaseManager::grant: vm ", vm,
                       " already leasing");
    ways &= l3.allWays();
    if (!ways || ways == l3.allWays())
        hh::sim::panic("CacheLeaseManager::grant: degenerate way "
                       "mask for vm ", vm);
    accrue(now);
    const std::uint64_t flushed = l3.validCountInWays(ways);
    l3.flushWays(ways);
    l3.setHarvestWays(ways);
    l.active = true;
    l.l3Ways = ways;
    l.l2Bonus = l2Bonus;
    l.grantedAt = now;
    l.expiresAt = now + term_;
    l.everLeased |= ways;
    ++grants_;
    flushed_lines_ += flushed;
    return flushed;
}

std::uint64_t
CacheLeaseManager::release(unsigned vm, SetAssocArray &l3, Cycles now,
                           bool expired)
{
    if (vm >= leases_.size())
        hh::sim::panic("CacheLeaseManager::release: vm ", vm, " of ",
                       leases_.size());
    Lease &l = leases_[vm];
    if (!l.active)
        hh::sim::panic("CacheLeaseManager::release: vm ", vm,
                       " not leasing");
    accrue(now);
    const std::uint64_t flushed = l3.validCountInWays(l.l3Ways);
    l3.flushWays(l.l3Ways);
    l3.setHarvestWays(0);
    l.active = false;
    l.l3Ways = 0;
    l.l2Bonus = 0;
    if (expired)
        ++expiries_;
    else
        ++recalls_;
    flushed_lines_ += flushed;
    return flushed;
}

std::vector<unsigned>
CacheLeaseManager::activeLenders() const
{
    std::vector<unsigned> vms;
    for (unsigned v = 0; v < leases_.size(); ++v)
        if (leases_[v].active)
            vms.push_back(v);
    return vms;
}

void
CacheLeaseManager::serialize(hh::snap::Archive &ar)
{
    for (Lease &l : leases_)
        l.serialize(ar);
    ar.io(grants_);
    ar.io(recalls_);
    ar.io(expiries_);
    ar.io(flushed_lines_);
    ar.io(way_cycles_);
    ar.io(last_accrue_);
}

} // namespace hh::lease
