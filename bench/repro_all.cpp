/**
 * @file
 * One-shot paper reproduction through the experiment engine
 * (src/exp/): runs the Figure 11 / 14 / 17 harnesses through the
 * JobScheduler — deduplicated, memoized against a crash-resumable
 * result ledger, and warm-started where configs share a prefix —
 * renders each figure byte-identically to its standalone binary, and
 * finishes with the machine-checked FidelityGate over the
 * EXPERIMENTS.md verdict tables.
 *
 * Usage:
 *   repro_all [--scale quick|default|full] [--seeds N]
 *             [--ledger path | --no-ledger] [--gate off|direction|full]
 *             [--workers N] [--spec file] [--telemetry out.jsonl]
 *             [--policies] [--graphs] [--cache-harvest]
 *
 * `--scale` presets the HH_REQUESTS / HH_SERVERS / HH_SAMPLING knobs
 * (explicit environment variables still win under `default`).
 * `--seeds N` replicates every figure over N consecutive seeds and
 * reports mean / 95% CI per measurement; the gate then judges the
 * means. A second invocation with the same ledger re-simulates
 * nothing ("0 simulated" in the engine summary). `--spec` adds the
 * points of a key=value experiment spec (docs/EXPERIMENTS_ENGINE.md)
 * to the same batch. `--policies` appends the harvest-policy
 * frontier sweep; `--graphs` appends the service-graph fleet sweep
 * (src/svc/) with its per-policy depth-monotone P99 check
 * (HH_GRAPH_SERVERS overrides the fleet size); `--cache-harvest`
 * appends the cache-capacity harvesting sweep (src/lease/) with its
 * machine-checked cache-check invariants.
 *
 * Exit code: nonzero when any fidelity, policy, graph, or
 * cache-harvest check fails.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/telemetry_hub.h"
#include "exp/fidelity.h"
#include "exp/ledger.h"
#include "exp/spec.h"
#include "cache_harvest.h"
#include "figures.h"
#include "policy_frontier.h"
#include "service_graph.h"
#include "sim/log.h"
#include "stats/percentile.h"

namespace {

using namespace hh::bench;

struct Args
{
    std::string scale = "default";
    unsigned seeds = 1;
    std::string ledgerPath = "repro_ledger.jsonl";
    bool noLedger = false;
    std::string gate = "direction";
    unsigned workers = 0;
    std::string specPath;
    std::string telemetryPath;
    bool policies = false;
    bool graphs = false;
    bool cacheHarvest = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    hh::sim::fatal(
        "usage: ", argv0,
        " [--scale quick|default|full] [--seeds N]"
        " [--ledger path | --no-ledger]"
        " [--gate off|direction|full] [--workers N] [--spec file]"
        " [--telemetry out.jsonl] [--policies] [--graphs]"
        " [--cache-harvest]");
}

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scale" && i + 1 < argc) {
            a.scale = argv[++i];
            if (a.scale != "quick" && a.scale != "default" &&
                a.scale != "full")
                usage(argv[0]);
        } else if (arg == "--seeds" && i + 1 < argc) {
            a.seeds = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            if (a.seeds == 0)
                usage(argv[0]);
        } else if (arg == "--ledger" && i + 1 < argc) {
            a.ledgerPath = argv[++i];
        } else if (arg == "--no-ledger") {
            a.noLedger = true;
        } else if (arg == "--gate" && i + 1 < argc) {
            a.gate = argv[++i];
            if (a.gate != "off" && a.gate != "direction" &&
                a.gate != "full")
                usage(argv[0]);
        } else if (arg == "--workers" && i + 1 < argc) {
            a.workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--spec" && i + 1 < argc) {
            a.specPath = argv[++i];
        } else if (arg == "--telemetry" && i + 1 < argc) {
            a.telemetryPath = argv[++i];
        } else if (arg == "--policies") {
            a.policies = true;
        } else if (arg == "--graphs") {
            a.graphs = true;
        } else if (arg == "--cache-harvest") {
            a.cacheHarvest = true;
        } else {
            usage(argv[0]);
        }
    }
    return a;
}

/** Preset the scale knobs; `default` keeps the env-derived values. */
void
applyScalePreset(BenchScale &scale, const std::string &preset)
{
    if (preset == "quick") {
        scale.requests = 96;
        scale.sampling = 32;
        scale.servers = 2;
    } else if (preset == "full") {
        scale.requests = 800;
        scale.sampling = 8;
        scale.servers = 8;
    }
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        hh::sim::fatal("cannot read ", path);
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

/** The figure harnesses of one replication seed. */
struct SeedSet
{
    Fig11Harness f11;
    Fig14Harness f14;
    Fig17Harness f17;
};

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);

    BenchScale scale;
    applyScalePreset(scale, args.scale);

    std::string command;
    for (int i = 0; i < argc; ++i) {
        if (i)
            command += ' ';
        command += argv[i];
    }

    const unsigned hw = std::thread::hardware_concurrency();
    hh::exp::ResultLedger::Meta meta;
    meta.command = command;
    meta.hardwareThreads = hw;
    meta.poolWorkers = args.workers
                           ? args.workers
                           : hh::sim::ThreadPool::defaultWorkers();
    meta.singleCoreHost = hw <= 1;

    std::unique_ptr<hh::exp::ResultLedger> ledger;
    if (!args.noLedger) {
        std::string err;
        ledger =
            hh::exp::ResultLedger::open(args.ledgerPath, meta, &err);
        if (!ledger)
            hh::sim::fatal("cannot open ledger ", args.ledgerPath,
                           ": ", err);
    }

    printHeader("repro_all",
                "paper figures through the experiment engine");
    std::printf("command: %s\n", command.c_str());
    std::printf("scale: %s (requests=%u servers=%u sampling=%u "
                "seed=%llu seeds=%u)\n",
                args.scale.c_str(), scale.requests, scale.servers,
                scale.sampling,
                static_cast<unsigned long long>(scale.seed),
                args.seeds);
    std::printf("host: %u hardware threads, %u pool workers%s\n",
                meta.hardwareThreads, meta.poolWorkers,
                meta.singleCoreHost ? " (single-core host)" : "");
    if (ledger) {
        std::printf("ledger: %s (%zu rows recovered",
                    ledger->path().c_str(), ledger->recoveredRows());
        if (ledger->droppedRows())
            std::printf(", %zu partial rows dropped",
                        ledger->droppedRows());
        std::printf(")\n");
    }

    hh::exp::JobScheduler::Options opts;
    opts.workers = args.workers;
    opts.ledger = ledger.get();
    hh::exp::JobScheduler sched(opts);

    // repro_all never enables tracing/metrics: observability payloads
    // are deliberately outside the ledger codec (see exp/scheduler.h).
    const ObsOptions obs;
    std::vector<SeedSet> sets;
    for (unsigned i = 0; i < args.seeds; ++i) {
        BenchScale s = scale;
        s.seed = scale.seed + i;
        sets.push_back(
            {Fig11Harness(s, obs), Fig14Harness(s),
             Fig17Harness(s, obs)});
    }
    for (auto &set : sets) {
        set.f11.submit(sched);
        set.f14.submit(sched);
        set.f17.submit(sched);
    }

    hh::exp::ExperimentSpec spec;
    std::vector<hh::exp::JobScheduler::Handle> specHandles;
    if (!args.specPath.empty()) {
        std::string err;
        if (!hh::exp::parseSpec(readFile(args.specPath), &spec, &err))
            hh::sim::fatal(args.specPath, ": ", err);
        specHandles = sched.addSpec(spec);
    }

    sched.run();

    // The base seed's figure blocks, byte-identical to the
    // standalone binaries at the same scale.
    ObsSink sink(obs);
    std::printf("\n");
    sets[0].f11.print(sched, sink);
    std::printf("\n");
    sets[0].f14.print(sched);
    std::printf("\n");
    sets[0].f17.print(sched, sink);

    if (!specHandles.empty()) {
        std::printf("\nSpec '%s': %zu points\n", spec.name.c_str(),
                    specHandles.size());
        std::printf("%-44s %12s %12s\n", "point", "p99[ms]",
                    "batchTput");
        const auto pts = spec.points();
        for (std::size_t i = 0; i < specHandles.size(); ++i) {
            const auto &res = sched.serverResult(specHandles[i]);
            std::printf("%-44s %12.3f %12.2f\n", pts[i].label.c_str(),
                        res.avgP99Ms(), res.batchThroughput);
        }
    }

    // --telemetry: one telemetry-enabled cluster run at this scale,
    // rendered through the TelemetryHub into the economics JSONL plus
    // the one-page report. Like tracing/metrics, telemetry payloads
    // are deliberately outside the ledger codec, so this run bypasses
    // the scheduler.
    if (!args.telemetryPath.empty()) {
        hh::cluster::SystemConfig tcfg = hh::cluster::makeSystem(
            hh::cluster::SystemKind::HardHarvestBlock);
        applyScale(tcfg, scale);
        tcfg.telemetryEnabled = true;
        hh::cluster::ClusterResults tres = hh::cluster::runCluster(
            tcfg, scale.servers, scale.seed, args.workers);
        hh::cluster::TelemetryHub hub(tcfg);
        for (auto &t : tres.serverTelemetry)
            hub.addServer(std::move(t));
        if (!hh::cluster::writeTextFile(args.telemetryPath,
                                        hub.jsonl()))
            hh::sim::fatal("cannot write ", args.telemetryPath);
        std::printf("\ntelemetry: %s (%zu epochs)\n%s",
                    args.telemetryPath.c_str(), hub.timeline().size(),
                    hub.report().c_str());
    }

    // --policies: the harvest-policy frontier sweep (one cluster run
    // per policy at this scale) plus its two machine-checked
    // invariants. Policy runs are plain runCluster calls outside the
    // scheduler: the frontier compares whole-run serializations, which
    // the ledger codec deliberately does not carry.
    int policy_failures = 0;
    if (args.policies) {
        hh::cluster::SystemConfig pcfg = hh::cluster::makeSystem(
            hh::cluster::SystemKind::HardHarvestBlock);
        applyScale(pcfg, scale);
        std::printf("\nHarvest-policy frontier (%u servers, "
                    "seed %llu):\n",
                    scale.servers,
                    static_cast<unsigned long long>(scale.seed));
        const auto points =
            runPolicyFrontier(pcfg, scale, args.workers);
        printPolicyFrontier(points);
        policy_failures = checkPolicyFrontier(points);
    }

    // --cache-harvest: the cache-capacity harvesting sweep
    // (src/lease/): core-only / cache-only / combined harvesting over
    // the same scale with the auditor on, plus the machine-checked
    // cache-check invariants. Like the policy frontier these are
    // plain runCluster calls outside the scheduler — the audited,
    // lease-carrying results are outside the ledger codec.
    int cache_failures = 0;
    if (args.cacheHarvest) {
        std::printf("\nCache-capacity harvesting (%u servers, "
                    "seed %llu):\n",
                    scale.servers,
                    static_cast<unsigned long long>(scale.seed));
        const auto cpoints =
            runCacheHarvestSweep(scale, args.workers);
        printCacheHarvest(cpoints);
        cache_failures = checkCacheHarvest(cpoints);
    }

    // --graphs: the service-graph fleet sweep (src/svc/): layered
    // RPC DAGs of depth 1..3 over every non-legacy harvest policy,
    // with the fleet harvesting-economics table and the per-policy
    // depth-monotone P99 check. Fleet runs are cross-server
    // simulations outside the scheduler: the ledger codec carries
    // single-server results only.
    int graph_failures = 0;
    if (args.graphs) {
        const unsigned graph_servers = envUnsigned(
            "HH_GRAPH_SERVERS", args.scale == "full" ? 64 : 16);
        std::vector<std::string> policies;
        for (const std::string &p : hh::policy::harvestPolicyNames()) {
            if (p != "legacy")
                policies.push_back(p);
        }
        // Graph fleets multiply the classic cluster's work by the
        // fleet size, so they run at a quarter of the per-VM arrival
        // budget (HH_REQUESTS still wins through the usual quarter).
        BenchScale gscale = scale;
        gscale.requests = std::max(scale.requests / 4, 16u);
        std::printf("\nService-graph fleet economics (%u servers, "
                    "fanout 2, %u req/VM, seed %llu):\n",
                    graph_servers, gscale.requests,
                    static_cast<unsigned long long>(scale.seed));
        const auto gpoints = runGraphSweep(gscale, graph_servers,
                                           {1, 2, 3}, /*fanout=*/2,
                                           policies, args.workers);
        std::printf("\n");
        printGraphEconomics(gpoints);
        graph_failures = checkGraphMonotone(gpoints);
    }

    // Per-seed measurements; the gate judges the across-seed means.
    std::vector<hh::exp::MeasurementSet> per_seed(args.seeds);
    for (unsigned i = 0; i < args.seeds; ++i) {
        sets[i].f11.measure(sched, per_seed[i]);
        sets[i].f14.measure(sched, per_seed[i]);
        sets[i].f17.measure(sched, per_seed[i]);
    }
    hh::exp::MeasurementSet mean;
    if (args.seeds > 1)
        std::printf("\nReplication over %u seeds "
                    "(mean +/- 95%% CI half-width):\n",
                    args.seeds);
    for (const auto &[key, base_value] : per_seed[0].all()) {
        std::vector<double> values;
        for (const auto &m : per_seed) {
            if (m.has(key))
                values.push_back(m.get(key));
        }
        const auto rs = hh::stats::replicationStats(values);
        mean.set(key, rs.mean);
        if (args.seeds > 1)
            std::printf("  %-32s %12.6g +/- %-10.3g (n=%zu)\n",
                        key.c_str(), rs.mean, rs.ci95, rs.n);
    }

    const auto &st = sched.stats();
    std::printf("\nEngine: %zu submitted, %zu unique, %zu memoized, "
                "%zu simulated (%zu warm-started, %zu prefix "
                "groups)\n",
                st.submitted, st.unique, st.memoized, st.simulated,
                st.warmStarted, st.prefixGroups);
    if (ledger)
        std::printf("ledger: %s now holds %zu rows\n",
                    ledger->path().c_str(), ledger->rows());

    int rc =
        (policy_failures || graph_failures || cache_failures) ? 1 : 0;
    if (args.gate != "off") {
        const auto level = args.gate == "full"
                               ? hh::exp::GateLevel::Full
                               : hh::exp::GateLevel::Direction;
        const auto outcomes = hh::exp::evaluateFidelity(
            hh::exp::paperFidelityCatalogue(), mean, level);
        std::printf("\nFidelityGate (%s):\n", args.gate.c_str());
        std::size_t passed = 0, failed = 0, skipped = 0;
        for (const auto &o : outcomes) {
            using Status = hh::exp::FidelityOutcome::Status;
            if (o.status == Status::Skipped) {
                ++skipped;
                continue;
            }
            const bool ok = o.status == Status::Pass;
            (ok ? passed : failed)++;
            std::printf("  [%s] %-32s %s\n", ok ? "PASS" : "FAIL",
                        o.id.c_str(), o.detail.c_str());
        }
        std::printf("  %zu passed, %zu failed, %zu skipped\n", passed,
                    failed, skipped);
        if (failed)
            rc = 1;
    }
    return rc;
}
