/**
 * @file
 * Cache-capacity harvesting frontier: batch throughput vs request
 * P99 for core-only / cache-only / combined harvesting over the same
 * cluster scale, plus the machine-checked `cache-check` invariants
 * (combined no worse than core-only on batch throughput within a 10%
 * P99 budget, lease activity present exactly where leasing is on,
 * auditor clean). See docs/CACHE_HARVEST.md.
 *
 * Not a paper figure: HardHarvest harvests cores only, so this sweep
 * is repo-specific evidence that way leasing composes with core
 * harvesting as a second, independent harvest dimension.
 *
 * HH_SERVERS selects how many of the 8 batch applications to run;
 * each mode point is one full audited cluster run.
 */

#include "cache_harvest.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    int failures = 0;
    const int sink_rc = figureMain(
        argc, argv,
        [&failures](const BenchScale &scale, const ObsOptions &,
                    ObsSink &) {
            printHeader("fig_cache_harvest",
                        "cache-capacity harvesting frontier");
            std::printf("servers=%u requests/VM=%u seed=%llu\n",
                        scale.servers, scale.requests,
                        static_cast<unsigned long long>(scale.seed));
            const auto points =
                runCacheHarvestSweep(scale, /*workers=*/0);
            std::printf("\n");
            printCacheHarvest(points);
            std::printf("\n");
            failures = checkCacheHarvest(points);
        });
    return failures ? 1 : sink_rc;
}
