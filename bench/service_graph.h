/**
 * @file
 * Shared service-graph fleet sweep: layered RPC-DAG fleets (src/svc/)
 * over the four pluggable harvest policies, rendered as a fleet
 * harvesting-economics table plus one machine-checked invariant per
 * policy:
 *
 *   graph-check depth-monotone@<policy>: PASS|FAIL
 *       Deeper graphs must not get *faster*: each synchronous tier
 *       adds two cross-server RPC hops to every request's critical
 *       path, so the end-to-end P99 must be non-decreasing in graph
 *       depth. A FAIL means tree latencies are being dropped or
 *       mis-attributed somewhere between the RPC engine and the
 *       fleet aggregation.
 *
 * Used by fig_service_graph and `repro_all --graphs` so both print
 * byte-identical tables; CI greps the PASS lines.
 */

#ifndef HH_BENCH_SERVICE_GRAPH_H
#define HH_BENCH_SERVICE_GRAPH_H

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "svc/fleet.h"

namespace hh::bench {

/** One fleet run in the graph sweep. */
struct GraphPoint
{
    std::string policy;
    unsigned depth = 0;
    hh::svc::FleetResults results;
};

/** The graph-mode base configuration at this scale. */
inline hh::cluster::SystemConfig
graphConfig(const BenchScale &scale)
{
    hh::cluster::SystemConfig cfg = hh::cluster::makeSystem(
        hh::cluster::SystemKind::HardHarvestBlock);
    applyScale(cfg, scale);
    return cfg;
}

/**
 * Run the sweep: one fleet per (policy, depth) over layered graphs
 * with the given fanout, all sharing scale, seed, and worker count.
 */
inline std::vector<GraphPoint>
runGraphSweep(const BenchScale &scale, unsigned servers,
              const std::vector<unsigned> &depths, unsigned fanout,
              const std::vector<std::string> &policies,
              unsigned workers)
{
    std::vector<GraphPoint> points;
    for (const std::string &policy : policies) {
        for (unsigned depth : depths) {
            const hh::svc::ServiceGraphSpec spec =
                hh::svc::makeLayeredGraphSpec(depth, fanout, servers);
            hh::cluster::SystemConfig cfg = graphConfig(scale);
            cfg.policy = policy;
            std::printf("running graph policy=%s depth=%u "
                        "(%u servers)...\n",
                        policy.c_str(), depth, servers);
            points.push_back(
                {policy, depth,
                 hh::svc::runFleet(spec, cfg, scale.seed, workers)});
        }
    }
    return points;
}

/**
 * The fleet harvesting-economics table: end-to-end tail latency vs
 * batch throughput and loan/reclaim traffic per (policy, depth).
 */
inline void
printGraphEconomics(const std::vector<GraphPoint> &points)
{
    std::printf("%-12s %5s %10s %10s %12s %8s %8s %6s %8s %9s\n",
                "policy", "depth", "e2eP99[us]", "fleetP99us",
                "batchTput", "loans", "reclaims", "util", "sheds",
                "wire");
    for (const auto &p : points) {
        const auto &r = p.results;
        // Shed roots are already counted in tiers[0].sheds.
        std::uint64_t sheds = 0;
        for (const auto &t : r.tiers)
            sheds += t.sheds;
        std::printf("%-12s %5u %10.1f %10.1f %12.2f %8llu %8llu "
                    "%6.3f %8llu %9llu\n",
                    p.policy.c_str(), p.depth, r.e2eP99Us,
                    r.fleetP99Us, r.batchThroughput,
                    static_cast<unsigned long long>(r.coreLoans),
                    static_cast<unsigned long long>(r.coreReclaims),
                    r.avgUtilization,
                    static_cast<unsigned long long>(sheds),
                    static_cast<unsigned long long>(r.wireMessages));
    }
}

/**
 * Machine check: within each policy, end-to-end P99 must be
 * non-decreasing in depth. Returns the number of failing policies.
 */
inline int
checkGraphMonotone(const std::vector<GraphPoint> &points)
{
    int failures = 0;
    std::vector<std::string> seen;
    for (const auto &p : points) {
        bool known = false;
        for (const auto &s : seen)
            known = known || s == p.policy;
        if (!known)
            seen.push_back(p.policy);
    }
    for (const auto &policy : seen) {
        bool ok = true;
        const GraphPoint *prev = nullptr;
        for (const auto &p : points) {
            if (p.policy != policy)
                continue;
            if (prev && prev->depth < p.depth &&
                p.results.e2eP99Us < prev->results.e2eP99Us) {
                ok = false;
                std::printf("  depth %u e2eP99=%.1fus < depth %u "
                            "e2eP99=%.1fus\n",
                            p.depth, p.results.e2eP99Us, prev->depth,
                            prev->results.e2eP99Us);
            }
            prev = &p;
        }
        std::printf("graph-check depth-monotone@%s: %s\n",
                    policy.c_str(), ok ? "PASS" : "FAIL");
        if (!ok)
            ++failures;
    }
    return failures;
}

} // namespace hh::bench

#endif // HH_BENCH_SERVICE_GRAPH_H
