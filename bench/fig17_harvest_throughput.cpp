/**
 * @file
 * Figure 17: throughput of Harvest VMs under the five evaluated
 * architectures, normalized to NoHarvest, per batch application.
 *
 * Paper: Harvest-Term improves throughput by 1.7x on average and
 * HardHarvest-Block by 3.1x; memory-intensive apps (RndFTrain) gain
 * least.
 *
 * HH_SERVERS selects how many of the 8 batch applications to run
 * (each requires 5 full-system simulations).
 */

#include "bench_util.h"
#include "workload/batch.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 17",
                "Harvest VM throughput normalized to NoHarvest");

    const SystemKind kinds[] = {
        SystemKind::NoHarvest, SystemKind::HarvestTerm,
        SystemKind::HarvestBlock, SystemKind::HardHarvestTerm,
        SystemKind::HardHarvestBlock};

    const auto apps = hh::workload::batchApplications();
    const unsigned n_apps = std::min<unsigned>(
        scale.servers, static_cast<unsigned>(apps.size()));

    std::printf("%-10s", "app");
    for (const SystemKind kind : kinds)
        std::printf(" %18s", systemName(kind));
    std::printf("\n");

    std::vector<double> avg(5, 0.0);
    for (unsigned a = 0; a < n_apps; ++a) {
        std::vector<double> tput;
        for (const SystemKind kind : kinds) {
            SystemConfig cfg = makeSystem(kind);
            applyScale(cfg, scale);
            applyObs(cfg, obs);
            auto res = runServer(cfg, apps[a].name, scale.seed);
            sink.collect(res, apps[a].name + "/" +
                                  systemName(kind));
            tput.push_back(res.batchThroughput);
        }
        std::printf("%-10s", apps[a].name.c_str());
        for (std::size_t s = 0; s < tput.size(); ++s) {
            const double norm = tput[s] / tput[0];
            avg[s] += norm;
            std::printf(" %18.2f", norm);
        }
        std::printf("\n");
    }
    std::printf("%-10s", "Average");
    for (std::size_t s = 0; s < avg.size(); ++s)
        std::printf(" %18.2f", avg[s] / n_apps);
    std::printf("\n\n(paper averages: 1.0, 1.7x, ~1.9x, ~2.8x, "
                "3.1x)\n");
    return sink.finish();
}
