/**
 * @file
 * Figure 17: throughput of Harvest VMs under the five evaluated
 * architectures, normalized to NoHarvest, per batch application.
 *
 * Paper: Harvest-Term improves throughput by 1.7x on average and
 * HardHarvest-Block by 3.1x; memory-intensive apps (RndFTrain) gain
 * least.
 *
 * HH_SERVERS selects how many of the 8 batch applications to run
 * (each requires 5 full-system simulations).
 *
 * Thin wrapper over Fig17Harness (figures.h); see fig11 for the
 * engine plumbing rationale.
 */

#include "figures.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    return figureMain(argc, argv,
                      [](const BenchScale &scale, const ObsOptions &obs,
                         ObsSink &sink) {
                          Fig17Harness fig(scale, obs);
                          hh::exp::JobScheduler sched;
                          fig.submit(sched);
                          sched.run();
                          fig.print(sched, sink);
                      });
}
