/**
 * @file
 * Figure 16: median latency of microservices in Primary VMs for the
 * five evaluated architectures.
 *
 * Paper: Harvest-Term's median is only 7.9% above NoHarvest (the
 * software damage is at the tail); HardHarvest-Block's median is
 * 26.1% below NoHarvest.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 16", "median latency, 5 systems [ms]");

    const SystemKind kinds[] = {
        SystemKind::NoHarvest, SystemKind::HarvestTerm,
        SystemKind::HarvestBlock, SystemKind::HardHarvestTerm,
        SystemKind::HardHarvestBlock};

    std::vector<std::string> series;
    std::vector<SystemConfig> cfgs;
    for (const SystemKind kind : kinds) {
        SystemConfig cfg = makeSystem(kind);
        applyScale(cfg, scale);
        applyObs(cfg, obs);
        cfgs.push_back(cfg);
        series.emplace_back(systemName(kind));
    }

    std::vector<std::vector<ServiceResult>> runs;
    std::vector<double> avg;
    auto sweep = runServerSweep(cfgs, "BFS", scale.seed);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        auto &res = sweep[i];
        sink.collect(res, series[i]);
        runs.push_back(res.services);
        avg.push_back(res.avgP50Ms());
    }

    printServiceTable(series, runs, "p50[ms]",
                      [](const ServiceResult &r) { return r.p50Ms; });
    std::printf("\nMedian vs NoHarvest (paper: +7.9%% for "
                "Harvest-Term, -26.1%% for HardHarvest-Block):\n");
    for (std::size_t i = 1; i < series.size(); ++i)
        std::printf("  %-18s %+0.1f%%\n", series[i].c_str(),
                    100.0 * (avg[i] / avg[0] - 1.0));
    return sink.finish();
}
