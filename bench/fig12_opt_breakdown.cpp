/**
 * @file
 * Figure 12: cumulative impact of individual HardHarvest
 * optimizations on the P99 tail latency of Primary VMs, starting
 * from software Harvest-Block and adding, in order: hardware request
 * scheduler (+Sched), hardware queues (+Queue), in-hardware context
 * switching (+CtxtSw), cache/TLB partitioning with LRU (+Part),
 * efficient flushing (+Flush), and the optimized replacement policy
 * (HardHarvest).
 *
 * Paper: cumulative reductions of 25.6%, 35.5%, 61.1%, 80.1%,
 * 83.6%, 85.6% relative to Harvest-Block.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 12",
                "cumulative optimization breakdown, P99 [ms]");

    enum Step
    {
        HarvestTermBar,
        HarvestBlockBar,
        Sched,
        Queue,
        CtxtSw,
        Part,
        Flush,
        Repl,
    };
    const char *names[] = {"HarvestTerm", "HarvestBlock", "+Sched",
                           "+Queue",      "+CtxtSw",      "+Part",
                           "+Flush",      "HardHarvest"};

    std::vector<std::string> series;
    std::vector<std::vector<ServiceResult>> runs;
    std::vector<double> avg;
    for (int step = HarvestTermBar; step <= Repl; ++step) {
        SystemConfig cfg = makeSystem(step == HarvestTermBar
                                          ? SystemKind::HarvestTerm
                                          : SystemKind::HarvestBlock);
        applyScale(cfg, scale);
        cfg.hwSched = step >= Sched;
        cfg.hwQueue = step >= Queue;
        cfg.hwCtxtSwitch = step >= CtxtSw;
        cfg.partitioning = step >= Part;
        cfg.efficientFlush = step >= Flush;
        cfg.repl = step >= Repl ? hh::cache::ReplKind::HardHarvest
                                : hh::cache::ReplKind::LRU;
        applyObs(cfg, obs);
        auto res = runServer(cfg, "BFS", scale.seed);
        sink.collect(res, names[step]);
        series.emplace_back(names[step]);
        runs.push_back(res.services);
        avg.push_back(res.avgP99Ms());
    }

    printServiceTable(series, runs, "p99[ms]",
                      [](const ServiceResult &r) { return r.p99Ms; });
    std::printf("\nCumulative reduction vs Harvest-Block (paper: "
                "25.6 35.5 61.1 80.1 83.6 85.6 %%):\n");
    for (std::size_t i = Sched; i < series.size(); ++i) {
        std::printf("  %-12s %.1f%%\n", series[i].c_str(),
                    100.0 * (1.0 - avg[i] / avg[HarvestBlockBar]));
    }
    return sink.finish();
}
