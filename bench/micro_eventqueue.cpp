/**
 * @file
 * google-benchmark microbenchmarks of the discrete-event queue hot
 * path: schedule/pop cycles, schedule/cancel churn, and the mixed
 * workload the server simulation actually generates (most events
 * run, a sizable fraction of timers is superseded and cancelled).
 *
 * `hh::bench::LegacyEventQueue` reproduces the seed implementation —
 * std::function callbacks plus unordered_map/unordered_set id
 * bookkeeping — so the speedup of the slab/InlineFunction rewrite is
 * measured side by side in one binary.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "legacy_event_queue.h"
#include "sim/event_queue.h"
#include "sim/inline_function.h"
#include "sim/rng.h"

namespace {

using hh::sim::Cycles;

/** The mixed schedule/cancel/pop workload (see legacy_event_queue.h). */
template <typename Queue>
void
runMix(benchmark::State &state)
{
    std::uint64_t sink = 0;
    hh::sim::Rng rng(7, 0xE0);
    Queue q;
    Cycles now = 0;
    std::vector<typename Queue::EventId> pending;
    // Prime a window so pops always succeed.
    for (int i = 0; i < 64; ++i)
        pending.push_back(
            q.schedule(now + 1 + (i % 13), [&sink] { ++sink; }));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hh::bench::eventQueueMixRound(q, rng, now, pending, sink));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_EventQueueMix_Legacy(benchmark::State &state)
{
    runMix<hh::bench::LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueueMix_Legacy);

void
BM_EventQueueMix_Slab(benchmark::State &state)
{
    runMix<hh::sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueMix_Slab);

/** Pure schedule/pop cycles, no cancellation. */
template <typename Queue>
void
runSchedulePop(benchmark::State &state)
{
    std::uint64_t sink = 0;
    Queue q;
    Cycles now = 0;
    for (int i = 0; i < 64; ++i)
        q.schedule(now + 1 + (i % 7), [&sink] { ++sink; });
    for (auto _ : state) {
        q.schedule(now + 5, [&sink] { ++sink; });
        q.pop(now)();
    }
    state.SetItemsProcessed(state.iterations());
    benchmark::DoNotOptimize(sink);
}

void
BM_EventQueueSchedulePop_Legacy(benchmark::State &state)
{
    runSchedulePop<hh::bench::LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueueSchedulePop_Legacy);

void
BM_EventQueueSchedulePop_Slab(benchmark::State &state)
{
    runSchedulePop<hh::sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueSchedulePop_Slab);

/** Schedule + immediate cancel churn (superseded timers). */
template <typename Queue>
void
runScheduleCancel(benchmark::State &state)
{
    Queue q;
    std::uint64_t sink = 0;
    Cycles t = 1;
    for (auto _ : state) {
        const auto id = q.schedule(t++, [&sink] { ++sink; });
        benchmark::DoNotOptimize(q.cancel(id));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_EventQueueScheduleCancel_Legacy(benchmark::State &state)
{
    runScheduleCancel<hh::bench::LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleCancel_Legacy);

void
BM_EventQueueScheduleCancel_Slab(benchmark::State &state)
{
    runScheduleCancel<hh::sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleCancel_Slab);

/** Callback wrapper cost in isolation: construct + invoke. */
void
BM_CallbackWrap_StdFunction(benchmark::State &state)
{
    std::uint64_t sink = 0;
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    for (auto _ : state) {
        std::function<void()> f =
            [&sink, a, b, c, d] { sink += a + b + c + d; };
        f();
        benchmark::DoNotOptimize(f);
    }
}
BENCHMARK(BM_CallbackWrap_StdFunction);

void
BM_CallbackWrap_InlineFunction(benchmark::State &state)
{
    std::uint64_t sink = 0;
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    for (auto _ : state) {
        hh::sim::InlineFunction<void()> f =
            [&sink, a, b, c, d] { sink += a + b + c + d; };
        f();
        benchmark::DoNotOptimize(f);
    }
}
BENCHMARK(BM_CallbackWrap_InlineFunction);

} // namespace

BENCHMARK_MAIN();
