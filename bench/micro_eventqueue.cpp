/**
 * @file
 * google-benchmark microbenchmarks of the discrete-event queue hot
 * path: schedule/pop cycles, schedule/cancel churn, and a three-way
 * shootout — seed implementation (std::function + hash-map id
 * bookkeeping), slab binary heap, hierarchical timing wheel — across
 * the three workload mixes that stress different structures:
 * near-future-heavy (the server mix), far-future-heavy (spread
 * across coarse wheel levels), and cancel-heavy (dead-node
 * skipping/compaction).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "legacy_event_queue.h"
#include "sim/event_queue.h"
#include "sim/event_queue_heap.h"
#include "sim/inline_function.h"
#include "sim/rng.h"

namespace {

using hh::sim::Cycles;

/** The parameterized schedule/cancel/pop workload mix. */
template <typename Queue>
void
runMix(benchmark::State &state, const hh::bench::QueueMixPreset &p)
{
    std::uint64_t sink = 0;
    hh::sim::Rng rng(7, 0xE0);
    Queue q;
    Cycles now = 0;
    std::vector<typename Queue::EventId> pending;
    // Prime a window so pops always succeed.
    for (int i = 0; i < 64; ++i)
        pending.push_back(
            q.schedule(now + 1 + (i % 13), [&sink] { ++sink; }));
    for (auto _ : state) {
        benchmark::DoNotOptimize(hh::bench::eventQueueMixRound(
            q, rng, now, pending, sink, p.horizon, p.cancelProb));
    }
    state.SetItemsProcessed(state.iterations());
}

const hh::bench::QueueMixPreset &
preset(const char *name)
{
    for (const auto &p : hh::bench::kQueueMixPresets) {
        if (std::string_view(p.name) == name)
            return p;
    }
    __builtin_trap(); // presets are compile-time constants
}

#define HH_MIX_BENCH(Variant, Queue, Mix)                            \
    void BM_EventQueueMix_##Variant##_##Mix(benchmark::State &state) \
    {                                                                \
        runMix<Queue>(state, preset(#Mix));                          \
    }                                                                \
    BENCHMARK(BM_EventQueueMix_##Variant##_##Mix)

HH_MIX_BENCH(Legacy, hh::bench::LegacyEventQueue, near);
HH_MIX_BENCH(Legacy, hh::bench::LegacyEventQueue, far);
HH_MIX_BENCH(Legacy, hh::bench::LegacyEventQueue, cancel);
HH_MIX_BENCH(Heap, hh::sim::HeapEventQueue, near);
HH_MIX_BENCH(Heap, hh::sim::HeapEventQueue, far);
HH_MIX_BENCH(Heap, hh::sim::HeapEventQueue, cancel);
HH_MIX_BENCH(Wheel, hh::sim::EventQueue, near);
HH_MIX_BENCH(Wheel, hh::sim::EventQueue, far);
HH_MIX_BENCH(Wheel, hh::sim::EventQueue, cancel);

#undef HH_MIX_BENCH

/** Pure schedule/pop cycles, no cancellation. */
template <typename Queue>
void
runSchedulePop(benchmark::State &state)
{
    std::uint64_t sink = 0;
    Queue q;
    Cycles now = 0;
    for (int i = 0; i < 64; ++i)
        q.schedule(now + 1 + (i % 7), [&sink] { ++sink; });
    for (auto _ : state) {
        q.schedule(now + 5, [&sink] { ++sink; });
        q.pop(now)();
    }
    state.SetItemsProcessed(state.iterations());
    benchmark::DoNotOptimize(sink);
}

void
BM_EventQueueSchedulePop_Legacy(benchmark::State &state)
{
    runSchedulePop<hh::bench::LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueueSchedulePop_Legacy);

void
BM_EventQueueSchedulePop_Heap(benchmark::State &state)
{
    runSchedulePop<hh::sim::HeapEventQueue>(state);
}
BENCHMARK(BM_EventQueueSchedulePop_Heap);

void
BM_EventQueueSchedulePop_Wheel(benchmark::State &state)
{
    runSchedulePop<hh::sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueSchedulePop_Wheel);

/** Schedule + immediate cancel churn (superseded timers). */
template <typename Queue>
void
runScheduleCancel(benchmark::State &state)
{
    Queue q;
    std::uint64_t sink = 0;
    Cycles t = 1;
    for (auto _ : state) {
        const auto id = q.schedule(t++, [&sink] { ++sink; });
        benchmark::DoNotOptimize(q.cancel(id));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_EventQueueScheduleCancel_Legacy(benchmark::State &state)
{
    runScheduleCancel<hh::bench::LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleCancel_Legacy);

void
BM_EventQueueScheduleCancel_Heap(benchmark::State &state)
{
    runScheduleCancel<hh::sim::HeapEventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleCancel_Heap);

void
BM_EventQueueScheduleCancel_Wheel(benchmark::State &state)
{
    runScheduleCancel<hh::sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleCancel_Wheel);

/** Callback wrapper cost in isolation: construct + invoke. */
void
BM_CallbackWrap_StdFunction(benchmark::State &state)
{
    std::uint64_t sink = 0;
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    for (auto _ : state) {
        std::function<void()> f =
            [&sink, a, b, c, d] { sink += a + b + c + d; };
        f();
        benchmark::DoNotOptimize(f);
    }
}
BENCHMARK(BM_CallbackWrap_StdFunction);

void
BM_CallbackWrap_InlineFunction(benchmark::State &state)
{
    std::uint64_t sink = 0;
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    for (auto _ : state) {
        hh::sim::InlineFunction<void()> f =
            [&sink, a, b, c, d] { sink += a + b + c + d; };
        f();
        benchmark::DoNotOptimize(f);
    }
}
BENCHMARK(BM_CallbackWrap_InlineFunction);

} // namespace

BENCHMARK_MAIN();
