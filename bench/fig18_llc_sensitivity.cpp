/**
 * @file
 * Figure 18: P99 tail latency of Primary VMs with HardHarvest-Block
 * and different LLC sizes (2.5, 2, 1, 0.5 MB per core).
 *
 * Paper: changes are small because microservice footprints are
 * modest; bigger LLC slightly lowers the tail.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 18",
                "HardHarvest-Block P99 vs LLC size [ms]");

    const double sizes[] = {2.5, 2.0, 1.0, 0.5};
    std::vector<std::string> series;
    std::vector<SystemConfig> cfgs;
    for (const double mb : sizes) {
        SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
        applyScale(cfg, scale);
        cfg.llcMbPerCore = mb;
        applyObs(cfg, obs);
        cfgs.push_back(cfg);
        char label[32];
        std::snprintf(label, sizeof label, "%.1fMB/core", mb);
        series.emplace_back(label);
    }

    std::vector<std::vector<ServiceResult>> runs;
    std::vector<double> avg;
    auto sweep = runServerSweep(cfgs, "BFS", scale.seed);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        auto &res = sweep[i];
        sink.collect(res, series[i]);
        runs.push_back(res.services);
        avg.push_back(res.avgP99Ms());
    }

    printServiceTable(series, runs, "p99[ms]",
                      [](const ServiceResult &r) { return r.p99Ms; });
    std::printf("\nAvg tail vs 2MB/core (paper: small changes):\n");
    for (std::size_t i = 0; i < series.size(); ++i)
        std::printf("  %-10s %.3fx\n", series[i].c_str(),
                    avg[i] / avg[1]);
    return sink.finish();
}
