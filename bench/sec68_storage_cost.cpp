/**
 * @file
 * Section 6.8: storage, area and power cost of the HardHarvest
 * hardware.
 *
 * Paper: 18.9 KB per controller (0.53 KB/core), 67.8 KB of Shared
 * bits per server (1.9 KB/core), 0.19% area and 0.16% power
 * overhead of the multicore at 7 nm.
 */

#include <cstdio>

#include "core/storage_cost.h"

int
main()
{
    const auto c = hh::core::computeStorageCost();
    std::printf("====================================================\n");
    std::printf("Section 6.8: storage / area / power cost\n");
    std::printf("====================================================\n");
    std::printf("%-34s %10s %10s\n", "component", "measured", "paper");
    std::printf("%-34s %8.2fKB %10s\n", "RQ array (2K x 66b)", c.rqKb,
                "16.5KB");
    std::printf("%-34s %8.2fKB %10s\n",
                "16x (VM state + RQ-Map + HarvestMask)", c.qmKb,
                "2.4KB");
    std::printf("%-34s %8.2fKB %10s\n", "controller total",
                c.controllerKb, "18.9KB");
    std::printf("%-34s %8.2fKB %10s\n", "controller per core",
                c.controllerPerCoreKb, "0.53KB");
    std::printf("%-34s %8.2fKB %10s\n", "Shared bits per core",
                c.sharedBitsPerCoreKb, "1.9KB");
    std::printf("%-34s %8.2fKB %10s\n", "Shared bits per server",
                c.sharedBitsServerKb, "67.8KB");
    std::printf("%-34s %9.2f%% %10s\n", "area overhead",
                c.areaOverheadPct, "0.19%");
    std::printf("%-34s %9.2f%% %10s\n", "power overhead",
                c.powerOverheadPct, "0.16%");
    return 0;
}
