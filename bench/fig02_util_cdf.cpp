/**
 * @file
 * Figure 2: CDF of the average and maximum core utilization of
 * Alibaba's microservice instances.
 *
 * Paper anchors: 50% of instances below 16.1% average utilization;
 * 90% below 40.7% maximum utilization.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "stats/percentile.h"
#include "workload/alibaba.h"

int
main()
{
    hh::bench::printHeader(
        "Figure 2", "core utilization CDF of Alibaba-like instances");

    hh::workload::AlibabaTrace trace(hh::bench::BenchScale{}.seed);
    const auto inst = trace.instances(10000);

    std::vector<double> avg;
    std::vector<double> mx;
    for (const auto &u : inst) {
        avg.push_back(u.avgUtil);
        mx.push_back(u.maxUtil);
    }

    std::vector<double> xs;
    for (double x = 0.0; x <= 1.0001; x += 0.05)
        xs.push_back(x);
    const auto cdf_avg = hh::stats::empiricalCdf(avg, xs);
    const auto cdf_max = hh::stats::empiricalCdf(mx, xs);

    std::printf("%-12s %12s %12s\n", "utilization", "CDF(avg)",
                "CDF(max)");
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::printf("%-12.2f %12.3f %12.3f\n", xs[i], cdf_avg[i],
                    cdf_max[i]);
    }

    const auto at = [&](std::vector<double> v, double p) {
        std::sort(v.begin(), v.end());
        return v[static_cast<std::size_t>(p * (v.size() - 1))];
    };
    std::printf("\nmedian avg util: %.3f (paper: 0.161)\n",
                at(avg, 0.5));
    std::printf("P90 max util:    %.3f (paper: 0.407)\n",
                at(mx, 0.9));
    return 0;
}
