/**
 * @file
 * Figure 13: ablation on the effectiveness of in-hardware context
 * switching (+CtxtSw) and hardware request scheduling (+Sched),
 * applied to Harvest-Block individually and together.
 *
 * Paper: the two have similar impact and are partially additive.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 13",
                "Sched vs CtxtSw ablation, P99 [ms]");

    struct Variant
    {
        const char *name;
        bool sched;
        bool ctxsw;
    };
    const Variant variants[] = {
        {"HarvestBlock", false, false},
        {"+CtxtSw", false, true},
        {"+Sched", true, false},
        {"+CtxtSw&Sched", true, true},
    };

    std::vector<std::string> series;
    std::vector<std::vector<ServiceResult>> runs;
    std::vector<double> avg;
    for (const auto &v : variants) {
        SystemConfig cfg = makeSystem(SystemKind::HarvestBlock);
        applyScale(cfg, scale);
        cfg.hwSched = v.sched;
        cfg.hwCtxtSwitch = v.ctxsw;
        applyObs(cfg, obs);
        auto res = runServer(cfg, "BFS", scale.seed);
        sink.collect(res, v.name);
        series.emplace_back(v.name);
        runs.push_back(res.services);
        avg.push_back(res.avgP99Ms());
    }

    printServiceTable(series, runs, "p99[ms]",
                      [](const ServiceResult &r) { return r.p99Ms; });
    std::printf("\nReduction vs HarvestBlock:\n");
    for (std::size_t i = 1; i < series.size(); ++i)
        std::printf("  %-14s %.1f%%\n", series[i].c_str(),
                    100.0 * (1.0 - avg[i] / avg[0]));
    return sink.finish();
}
