/**
 * @file
 * google-benchmark microbenchmarks of the HardHarvest hardware
 * structures: RQ enqueue/dequeue, Queue Manager bookkeeping,
 * replacement-policy victim selection, and full hierarchy accesses.
 *
 * These measure simulator (host) cost, useful for keeping the
 * simulation fast; they are not simulated-latency numbers.
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.h"
#include "cache/set_assoc.h"
#include "core/controller.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "workload/service.h"

using namespace hh::cache;

static void
BM_RqEnqueueDequeue(benchmark::State &state)
{
    hh::core::HardHarvestController ctrl(hh::core::ControllerConfig{},
                                         36);
    ctrl.registerVm(0, true, 4);
    std::uint64_t id = 1;
    for (auto _ : state) {
        ctrl.enqueue(0, id);
        const auto r = ctrl.dequeue(0);
        benchmark::DoNotOptimize(r);
        ctrl.complete(0, *r);
        ++id;
    }
}
BENCHMARK(BM_RqEnqueueDequeue);

static void
BM_ControllerRegisterRemove(benchmark::State &state)
{
    for (auto _ : state) {
        hh::core::HardHarvestController ctrl(
            hh::core::ControllerConfig{}, 36);
        for (std::uint32_t vm = 0; vm < 9; ++vm)
            ctrl.registerVm(vm, vm < 8, 4);
        benchmark::DoNotOptimize(ctrl.totalWeight());
    }
}
BENCHMARK(BM_ControllerRegisterRemove);

static void
BM_SetAssocAccess(benchmark::State &state)
{
    const auto kind = static_cast<ReplKind>(state.range(0));
    SetAssocArray arr(kL2, makePolicy(kind));
    arr.setHarvestWayCount(4);
    if (kind == ReplKind::HardHarvest)
        arr.setCandidateFraction(0.75);
    hh::sim::Rng rng(1, 2);
    for (auto _ : state) {
        const Addr key = rng.uniformInt(std::uint64_t{32768});
        benchmark::DoNotOptimize(
            arr.access(key, rng.bernoulli(0.6)));
    }
}
BENCHMARK(BM_SetAssocAccess)
    ->Arg(static_cast<int>(ReplKind::LRU))
    ->Arg(static_cast<int>(ReplKind::RRIP))
    ->Arg(static_cast<int>(ReplKind::HardHarvest));

static void
BM_HierarchyAccess(benchmark::State &state)
{
    HierarchyConfig cfg;
    cfg.repl = ReplKind::HardHarvest;
    cfg.partitioning = true;
    cfg.candidateFraction = 0.75;
    CoreHierarchy h(cfg, nullptr, nullptr);
    hh::workload::ServiceWorkload wl(
        hh::workload::serviceByName("Text"), 1, 7);
    const auto plan = wl.planInvocation();
    hh::sim::Cycles now = 0;
    for (auto _ : state) {
        now += h.access(now, wl.nextAccess(plan));
        benchmark::DoNotOptimize(now);
    }
}
BENCHMARK(BM_HierarchyAccess);

static void
BM_HarvestRegionFlush(benchmark::State &state)
{
    HierarchyConfig cfg;
    cfg.partitioning = true;
    CoreHierarchy h(cfg, nullptr, nullptr);
    for (auto _ : state)
        h.flushHarvestRegion(0, 1000);
}
BENCHMARK(BM_HarvestRegionFlush);

// Full simulator dispatch loop: schedule + step through the
// Simulator (clock update, event-queue pop, callback invoke). This
// is the per-event overhead every simulated component pays.
static void
BM_SimulatorScheduleStep(benchmark::State &state)
{
    hh::sim::Simulator sim;
    std::uint64_t sink = 0;
    for (int i = 0; i < 32; ++i)
        sim.schedule(i + 1, [&sink] { ++sink; });
    for (auto _ : state) {
        sim.schedule(8, [&sink] { ++sink; });
        sim.step();
    }
    state.SetItemsProcessed(state.iterations());
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SimulatorScheduleStep);

// Timer-superseded pattern: schedule a timeout, cancel it when the
// (simulated) notification wins the race. Exercises the O(1)
// generation-tag cancel.
static void
BM_SimulatorScheduleCancel(benchmark::State &state)
{
    hh::sim::Simulator sim;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const auto id = sim.schedule(1000, [&sink] { ++sink; });
        benchmark::DoNotOptimize(sim.cancel(id));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorScheduleCancel);

BENCHMARK_MAIN();
