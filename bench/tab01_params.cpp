/**
 * @file
 * Table 1: architectural parameters used in the evaluation.
 *
 * Prints the modelled configuration so it can be diffed against the
 * paper's table.
 */

#include <cstdio>

#include "cache/config.h"
#include "cluster/system_config.h"
#include "core/controller.h"
#include "mem/dram.h"
#include "net/fabric.h"

int
main()
{
    using namespace hh::cache;
    std::printf("Table 1: architectural parameters\n");
    std::printf("---------------------------------------------\n");
    const auto cfg =
        hh::cluster::makeSystem(hh::cluster::SystemKind::HardHarvestBlock);
    std::printf("Machine            cluster of 8 servers\n");
    std::printf("Server processor   %u cores at 3 GHz\n", cfg.cores);

    auto geom = [](const char *name, const Geometry &g,
                   unsigned line_or_entries) {
        std::printf("%-18s %u sets x %u ways (%u %s), %llu-cycle RT\n",
                    name, g.sets, g.ways, line_or_entries,
                    line_or_entries > 512 ? "B total" : "B line",
                    static_cast<unsigned long long>(g.latency));
    };
    geom("L1 D-Cache", kL1D, kL1D.entries() * kLineBytes);
    geom("L1 I-Cache", kL1I, kL1I.entries() * kLineBytes);
    geom("L2 Cache", kL2, kL2.entries() * kLineBytes);
    geom("L3 Cache/core", kL3PerCore, kL3PerCore.entries() * kLineBytes);
    std::printf("L1 TLB             %u entries, %u-way, %llu-cycle RT\n",
                kL1Tlb.entries(), kL1Tlb.ways,
                static_cast<unsigned long long>(kL1Tlb.latency));
    std::printf("L2 TLB             %u entries, %u-way, %llu-cycle RT\n",
                kL2Tlb.entries(), kL2Tlb.ways,
                static_cast<unsigned long long>(kL2Tlb.latency));

    hh::net::Fabric fabric;
    std::printf("Inter-server       %.2f us RT, %.0f GB/s\n",
                hh::sim::cyclesToUs(fabric.roundTrip(0)),
                fabric.config().bytesPerCycle * 3.0);
    std::printf("Primary VMs        %u per server, %u cores each\n",
                cfg.primaryVms, cfg.coresPerPrimary);
    std::printf("Harvest VMs        1 per server, %u cores + harvested\n",
                cfg.cores - cfg.primaryVms * cfg.coresPerPrimary);

    hh::mem::DramConfig dram;
    std::printf("Main memory        DDR4-3200, %u controllers, "
                "102.4 GB/s\n", dram.controllers);

    hh::core::ControllerConfig ctrl;
    std::printf("RQ                 %u chunks x %u entries\n",
                ctrl.rqChunks, ctrl.entriesPerChunk);
    std::printf("Queue Managers     %u\n", ctrl.maxQms);
    std::printf("VM State Regs      16 per set\n");
    std::printf("Harvest region     %.0f%% of ways\n",
                cfg.harvestWayFraction * 100);
    std::printf("Evict candidates M %.0f%% of ways\n",
                cfg.candidateFraction * 100);
    std::printf("Flush+Inv HarvReg  %llu cycles\n",
                static_cast<unsigned long long>(ctrl.flushBound));
    return 0;
}
