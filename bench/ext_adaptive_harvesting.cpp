/**
 * @file
 * Extension study (paper §4.1.5 future work): customized harvesting
 * policies on top of HardHarvest-Block.
 *
 *  - Adaptive: dynamically fall back from harvest-on-block to
 *    harvest-on-termination for VMs whose requests block only
 *    briefly (the paper's suggested I/O-time monitor).
 *  - Buffered: keep one idle core per Primary VM un-lent so bursts
 *    do not even pay the hardware reclaim (the paper's suggested
 *    burst buffer).
 *
 * Also reproduces the §6.3 CDP negative result: replacing the
 * shared/private replacement distinction with instruction/data
 * prioritization increases tail latency (paper: +8%).
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Extensions",
                "adaptive / buffered harvesting and CDP (§4.1.5, "
                "§6.3)");

    struct Variant
    {
        const char *name;
        bool adaptive;
        unsigned buffer;
        hh::cache::ReplKind repl;
    };
    const Variant variants[] = {
        {"HardHarvest-Block", false, 0,
         hh::cache::ReplKind::HardHarvest},
        {"+Adaptive", true, 0, hh::cache::ReplKind::HardHarvest},
        {"+Buffer(1)", false, 1, hh::cache::ReplKind::HardHarvest},
        {"CDP-repl", false, 0, hh::cache::ReplKind::CDP},
    };

    std::printf("%-18s %10s %10s %12s %10s\n", "variant", "p99[ms]",
                "p50[ms]", "batch[t/s]", "reclaims");
    double base_p99 = 0;
    double cdp_p99 = 0;
    for (const auto &v : variants) {
        SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
        applyScale(cfg, scale);
        cfg.adaptiveHarvest = v.adaptive;
        cfg.hwEmergencyBuffer = v.buffer;
        cfg.repl = v.repl;
        applyObs(cfg, obs);
        auto res = runServer(cfg, "BFS", scale.seed);
        sink.collect(res, v.name);
        if (v.repl == hh::cache::ReplKind::CDP)
            cdp_p99 = res.avgP99Ms();
        if (!v.adaptive && v.buffer == 0 &&
            v.repl == hh::cache::ReplKind::HardHarvest)
            base_p99 = res.avgP99Ms();
        std::printf("%-18s %10.3f %10.3f %12.0f %10llu\n", v.name,
                    res.avgP99Ms(), res.avgP50Ms(),
                    res.batchThroughput,
                    static_cast<unsigned long long>(
                        res.coreReclaims));
    }
    std::printf("\nCDP vs HardHarvest replacement: %+.1f%% tail "
                "(paper: +8%%)\n",
                100.0 * (cdp_p99 / base_p99 - 1.0));
    return sink.finish();
}
