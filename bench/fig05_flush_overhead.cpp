/**
 * @file
 * Figure 5: P99 tail latency with cache/TLB flushing (wbinvd) and,
 * for the last two bars, both flushing and hypervisor reassignment.
 *
 * Bars: No-Flush, Flush-Term, Flush-Block, Harvest-Term,
 * Harvest-Block. Paper: 2.7x, 3.3x, 3.6x, 4.2x average increase.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 5",
                "P99 tail with cache/TLB flushing [ms]");

    struct Variant
    {
        const char *name;
        bool harvesting;
        bool onBlock;
        bool flush;
        bool reassignFree; //!< true = flush cost only (Flush-*).
    };
    const Variant variants[] = {
        {"No-Flush", false, false, false, true},
        {"Flush-Term", true, false, true, true},
        {"Flush-Block", true, true, true, true},
        {"Harvest-Term", true, false, true, false},
        {"Harvest-Block", true, true, true, false},
    };

    std::vector<std::string> series;
    std::vector<std::vector<ServiceResult>> runs;
    std::vector<double> avg;
    for (const auto &v : variants) {
        SystemConfig cfg = makeSystem(v.harvesting
                                          ? SystemKind::HarvestTerm
                                          : SystemKind::NoHarvest);
        applyScale(cfg, scale);
        cfg.harvesting = v.harvesting;
        cfg.harvestOnBlock = v.onBlock;
        cfg.swFlushOnReassign = v.flush;
        cfg.swReassignFree = v.reassignFree;
        applyObs(cfg, obs);
        auto res = runServer(cfg, "BFS", scale.seed);
        sink.collect(res, v.name);
        series.emplace_back(v.name);
        runs.push_back(res.services);
        avg.push_back(res.avgP99Ms());
    }

    printServiceTable(series, runs, "p99[ms]",
                      [](const ServiceResult &r) { return r.p99Ms; });
    std::printf("\nTail increase vs No-Flush (paper: 2.7x 3.3x 3.6x "
                "4.2x):\n");
    for (std::size_t i = 1; i < series.size(); ++i)
        std::printf("  %-14s %.2fx\n", series[i].c_str(),
                    avg[i] / avg[0]);
    return sink.finish();
}
