/**
 * @file
 * Shared helpers for the figure/table benchmark binaries.
 *
 * Each binary regenerates one table or figure of the paper and
 * prints its rows. Environment variables scale the runs:
 *   HH_REQUESTS  arrival budget per Primary VM   (default 800)
 *   HH_SERVERS   servers in cluster experiments  (default 2)
 *   HH_SAMPLING  memory-access sampling factor   (default 6)
 *   HH_SEED      experiment seed                 (default 1)
 */

#ifndef HH_BENCH_UTIL_H
#define HH_BENCH_UTIL_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "cluster/checkpoint.h"
#include "cluster/experiment.h"
#include "cluster/parallel.h"
#include "cluster/system_config.h"
#include "sim/log.h"
#include "sim/time.h"
#include "stats/sampler.h"
#include "trace/chrome_trace.h"

namespace hh::bench {

/** Read an environment variable as unsigned with a default. */
inline unsigned
envUnsigned(const char *name, unsigned def)
{
    const char *v = std::getenv(name);
    if (!v)
        return def;
    const long parsed = std::strtol(v, nullptr, 10);
    return parsed > 0 ? static_cast<unsigned>(parsed) : def;
}

/** Read an environment variable as double with a default. */
inline double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    if (!v)
        return def;
    const double parsed = std::strtod(v, nullptr);
    return parsed > 0 ? parsed : def;
}

/**
 * Scale knobs shared by all benches. The environment always wins;
 * the constructor arguments only shift the defaults for benches that
 * want a different baseline (e.g. bench_speed runs all 8 servers), so
 * no binary parses HH_* on its own.
 */
struct BenchScale
{
    unsigned requests;
    unsigned servers;
    unsigned sampling;
    std::uint64_t seed;

    explicit BenchScale(unsigned def_servers = 2,
                        unsigned def_requests = 400,
                        unsigned def_sampling = 8)
        : requests(envUnsigned("HH_REQUESTS", def_requests)),
          servers(envUnsigned("HH_SERVERS", def_servers)),
          sampling(envUnsigned("HH_SAMPLING", def_sampling)),
          seed(envUnsigned("HH_SEED", 1))
    {
    }
};

/** Apply the scale knobs to a system configuration. */
inline void
applyScale(hh::cluster::SystemConfig &cfg, const BenchScale &s)
{
    cfg.requestsPerVm = s.requests;
    cfg.accessSampling = s.sampling;
    cfg.seed = s.seed;
}

/**
 * Observability command-line options accepted by every figure bench:
 *
 *   --trace <out.json>   Enable request-span/transition tracing and
 *                        write a Chrome trace_event JSON file
 *                        (loadable in chrome://tracing or Perfetto).
 *   --metrics <out.csv>  Enable periodic metric sampling and write
 *                        the time series as CSV.
 *   --checkpoint-every <ms>
 *                        Periodically checkpoint cluster runs every
 *                        <ms> simulated milliseconds (see
 *                        docs/SNAPSHOT.md); a killed run resumes from
 *                        the last checkpoint on the next invocation.
 *   --checkpoint-file <path>
 *                        Where the checkpoint lives (default
 *                        checkpoint.hhcp).
 */
struct ObsOptions
{
    std::string tracePath;
    std::string metricsPath;
    double checkpointEveryMs = 0;
    std::string checkpointPath = "checkpoint.hhcp";

    bool traceEnabled() const { return !tracePath.empty(); }
    bool metricsEnabled() const { return !metricsPath.empty(); }
    bool checkpointEnabled() const { return checkpointEveryMs > 0; }
};

/**
 * Parse --trace/--metrics/--checkpoint-every/--checkpoint-file;
 * fatal on unknown arguments.
 */
inline ObsOptions
parseObsArgs(int argc, char **argv)
{
    ObsOptions o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--trace" && i + 1 < argc) {
            o.tracePath = argv[++i];
        } else if (a == "--metrics" && i + 1 < argc) {
            o.metricsPath = argv[++i];
        } else if (a == "--checkpoint-every" && i + 1 < argc) {
            o.checkpointEveryMs = std::strtod(argv[++i], nullptr);
        } else if (a == "--checkpoint-file" && i + 1 < argc) {
            o.checkpointPath = argv[++i];
        } else {
            hh::sim::fatal("usage: ", argv[0],
                           " [--trace out.json] [--metrics out.csv]"
                           " [--checkpoint-every ms]"
                           " [--checkpoint-file path]");
        }
    }
    return o;
}

/**
 * Cluster run honoring the checkpoint options: with
 * --checkpoint-every, resume from an existing checkpoint file if one
 * matches this run's configuration, otherwise run from t=0 while
 * checkpointing periodically. Results are byte-identical to a plain
 * runCluster either way (the snapshot determinism contract).
 */
inline hh::cluster::ClusterResults
runClusterResumable(const hh::cluster::SystemConfig &cfg,
                    unsigned servers, std::uint64_t seed,
                    unsigned workers, const ObsOptions &o)
{
    if (!o.checkpointEnabled())
        return hh::cluster::runCluster(cfg, servers, seed, workers);
    // A missing checkpoint file is the normal first run, not an
    // error; only an existing-but-unusable file deserves a warning.
    bool exists = false;
    if (std::FILE *probe = std::fopen(o.checkpointPath.c_str(), "rb")) {
        std::fclose(probe);
        exists = true;
    }
    if (exists) {
        std::string err;
        if (auto resumed = hh::cluster::resumeCluster(
                o.checkpointPath, cfg, workers, &err)) {
            std::printf("resumed from %s\n", o.checkpointPath.c_str());
            return *std::move(resumed);
        }
        hh::sim::warn("cannot resume ", o.checkpointPath, ": ", err,
                      "; running from t=0");
    }
    const auto every =
        hh::sim::msToCycles(std::max(o.checkpointEveryMs, 0.001));
    hh::cluster::CheckpointedRun run =
        hh::cluster::runClusterCheckpointed(cfg, servers, seed,
                                            workers, every,
                                            o.checkpointPath);
    std::printf("checkpointed %u times to %s\n",
                run.checkpointsWritten, o.checkpointPath.c_str());
    if (run.preViolationDumped)
        std::printf("pre-violation state dumped to %s\n",
                    run.preViolationPath.c_str());
    return std::move(run.results);
}

/** Turn on the corresponding SystemConfig observability knobs. */
inline void
applyObs(hh::cluster::SystemConfig &cfg, const ObsOptions &o)
{
    cfg.traceEnabled = cfg.traceEnabled || o.traceEnabled();
    cfg.metricsEnabled = cfg.metricsEnabled || o.metricsEnabled();
}

/**
 * Accumulates trace buffers and metric series across the runs of one
 * bench and writes the requested output files at the end.
 */
struct ObsSink
{
    ObsOptions opts;
    std::vector<hh::trace::ServerTrace> traces;
    std::vector<hh::stats::SampledSeries> series;

    explicit ObsSink(ObsOptions o) : opts(std::move(o)) {}

    /** Take one server run's observability data (moves it out). */
    void
    collect(hh::cluster::ServerResults &res, const std::string &label)
    {
        if (opts.traceEnabled()) {
            hh::trace::ServerTrace t;
            t.pid = static_cast<unsigned>(traces.size());
            t.events = std::move(res.traceEvents);
            t.dropped = res.traceDropped;
            traces.push_back(std::move(t));
        }
        if (opts.metricsEnabled()) {
            res.metricSeries.label = label;
            series.push_back(std::move(res.metricSeries));
        }
    }

    /** Take a whole cluster run's observability data. */
    void
    collect(hh::cluster::ClusterResults &res)
    {
        for (auto &t : res.traces) {
            t.pid = static_cast<unsigned>(traces.size());
            traces.push_back(std::move(t));
        }
        for (auto &s : res.metricSeries)
            series.push_back(std::move(s));
        res.traces.clear();
        res.metricSeries.clear();
    }

    /** Write the requested files; nonzero on I/O failure. */
    int
    finish() const
    {
        int rc = 0;
        if (opts.traceEnabled()) {
            if (hh::trace::writeChromeTrace(opts.tracePath, traces)) {
                std::printf("trace: %s (%zu tracks)\n",
                            opts.tracePath.c_str(), traces.size());
            } else {
                hh::sim::warn("cannot write ", opts.tracePath);
                rc = 1;
            }
        }
        if (opts.metricsEnabled()) {
            if (hh::stats::writeMetricsCsv(opts.metricsPath, series)) {
                std::printf("metrics: %s (%zu series)\n",
                            opts.metricsPath.c_str(), series.size());
            } else {
                hh::sim::warn("cannot write ", opts.metricsPath);
                rc = 1;
            }
        }
        return rc;
    }
};

/**
 * Shared `main()` skeleton of the figure binaries: env-driven scale
 * (HH_REQUESTS / HH_SERVERS / HH_SAMPLING / HH_SEED), observability
 * argument parsing, and end-of-run trace/metrics file emission.
 * @p body receives the parsed scale, options, and sink and runs the
 * figure; the process exit code reports sink I/O failures.
 */
template <class Body>
inline int
figureMain(int argc, char **argv, Body &&body)
{
    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    body(scale, obs, sink);
    return sink.finish();
}

/**
 * Run one server simulation per sweep point, in parallel (one
 * thread-pool task per point; workers from HH_THREADS or hardware
 * concurrency). Results come back in sweep order and are identical
 * to running the points sequentially.
 */
inline std::vector<hh::cluster::ServerResults>
runServerSweep(const std::vector<hh::cluster::SystemConfig> &cfgs,
               const std::string &batchApp, std::uint64_t seed)
{
    return hh::cluster::runParallel<hh::cluster::ServerResults>(
        cfgs.size(), [&cfgs, &batchApp, seed](std::size_t i) {
            const hh::sim::LogTagScope tag("sweep" +
                                           std::to_string(i));
            return hh::cluster::runServer(cfgs[i], batchApp, seed);
        });
}

/** Print a standard header naming the experiment. */
inline void
printHeader(const char *figure, const char *title)
{
    std::printf("================================================"
                "====\n");
    std::printf("%s: %s\n", figure, title);
    std::printf("================================================"
                "====\n");
}

/**
 * Print a per-service metric table: one row per service plus the
 * average, one column per labelled series.
 */
inline void
printServiceTable(
    const std::vector<std::string> &series,
    const std::vector<std::vector<hh::cluster::ServiceResult>> &runs,
    const char *metric, double (*get)(const hh::cluster::ServiceResult &))
{
    std::printf("%-10s", metric);
    for (const auto &name : series)
        std::printf(" %18s", name.c_str());
    std::printf("\n");
    if (runs.empty() || runs[0].empty())
        return;
    const std::size_t n_services = runs[0].size();
    std::vector<double> avg(series.size(), 0.0);
    for (std::size_t i = 0; i < n_services; ++i) {
        std::printf("%-10s", runs[0][i].name.c_str());
        for (std::size_t s = 0; s < runs.size(); ++s) {
            const double v = get(runs[s][i]);
            avg[s] += v;
            std::printf(" %18.3f", v);
        }
        std::printf("\n");
    }
    std::printf("%-10s", "Average");
    for (std::size_t s = 0; s < runs.size(); ++s) {
        std::printf(" %18.3f",
                    avg[s] / static_cast<double>(n_services));
    }
    std::printf("\n");
}

} // namespace hh::bench

#endif // HH_BENCH_UTIL_H
