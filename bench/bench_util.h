/**
 * @file
 * Shared helpers for the figure/table benchmark binaries.
 *
 * Each binary regenerates one table or figure of the paper and
 * prints its rows. Environment variables scale the runs:
 *   HH_REQUESTS  arrival budget per Primary VM   (default 800)
 *   HH_SERVERS   servers in cluster experiments  (default 2)
 *   HH_SAMPLING  memory-access sampling factor   (default 6)
 *   HH_SEED      experiment seed                 (default 1)
 */

#ifndef HH_BENCH_UTIL_H
#define HH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "cluster/parallel.h"
#include "cluster/system_config.h"

namespace hh::bench {

/** Read an environment variable as unsigned with a default. */
inline unsigned
envUnsigned(const char *name, unsigned def)
{
    const char *v = std::getenv(name);
    if (!v)
        return def;
    const long parsed = std::strtol(v, nullptr, 10);
    return parsed > 0 ? static_cast<unsigned>(parsed) : def;
}

/** Scale knobs shared by all benches. */
struct BenchScale
{
    unsigned requests = envUnsigned("HH_REQUESTS", 400);
    unsigned servers = envUnsigned("HH_SERVERS", 2);
    unsigned sampling = envUnsigned("HH_SAMPLING", 8);
    std::uint64_t seed = envUnsigned("HH_SEED", 1);
};

/** Apply the scale knobs to a system configuration. */
inline void
applyScale(hh::cluster::SystemConfig &cfg, const BenchScale &s)
{
    cfg.requestsPerVm = s.requests;
    cfg.accessSampling = s.sampling;
    cfg.seed = s.seed;
}

/**
 * Run one server simulation per sweep point, in parallel (one
 * thread-pool task per point; workers from HH_THREADS or hardware
 * concurrency). Results come back in sweep order and are identical
 * to running the points sequentially.
 */
inline std::vector<hh::cluster::ServerResults>
runServerSweep(const std::vector<hh::cluster::SystemConfig> &cfgs,
               const std::string &batchApp, std::uint64_t seed)
{
    return hh::cluster::runParallel<hh::cluster::ServerResults>(
        cfgs.size(), [&cfgs, &batchApp, seed](std::size_t i) {
            return hh::cluster::runServer(cfgs[i], batchApp, seed);
        });
}

/** Print a standard header naming the experiment. */
inline void
printHeader(const char *figure, const char *title)
{
    std::printf("================================================"
                "====\n");
    std::printf("%s: %s\n", figure, title);
    std::printf("================================================"
                "====\n");
}

/**
 * Print a per-service metric table: one row per service plus the
 * average, one column per labelled series.
 */
inline void
printServiceTable(
    const std::vector<std::string> &series,
    const std::vector<std::vector<hh::cluster::ServiceResult>> &runs,
    const char *metric, double (*get)(const hh::cluster::ServiceResult &))
{
    std::printf("%-10s", metric);
    for (const auto &name : series)
        std::printf(" %18s", name.c_str());
    std::printf("\n");
    if (runs.empty() || runs[0].empty())
        return;
    const std::size_t n_services = runs[0].size();
    std::vector<double> avg(series.size(), 0.0);
    for (std::size_t i = 0; i < n_services; ++i) {
        std::printf("%-10s", runs[0][i].name.c_str());
        for (std::size_t s = 0; s < runs.size(); ++s) {
            const double v = get(runs[s][i]);
            avg[s] += v;
            std::printf(" %18.3f", v);
        }
        std::printf("\n");
    }
    std::printf("%-10s", "Average");
    for (std::size_t s = 0; s < runs.size(); ++s) {
        std::printf(" %18.3f",
                    avg[s] / static_cast<double>(n_services));
    }
    std::printf("\n");
}

} // namespace hh::bench

#endif // HH_BENCH_UTIL_H
