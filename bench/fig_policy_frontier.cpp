/**
 * @file
 * Harvest-policy frontier: batch throughput vs request P99 for every
 * harvest/reclaim policy (src/policy/) over the HardHarvest-Block
 * configuration, plus the two machine-checked frontier invariants
 * (StaticPolicy bit-identical to the legacy inlined path, hysteresis
 * no worse than static on batch throughput). See docs/POLICIES.md.
 *
 * Not a paper figure: the paper's hardware policy is fixed, so this
 * frontier is repo-specific evidence that the pluggable policies
 * trade throughput against tail latency as designed.
 *
 * HH_SERVERS selects how many of the 8 batch applications to run;
 * each policy point is one full cluster run.
 */

#include "policy_frontier.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    int failures = 0;
    const int sink_rc = figureMain(
        argc, argv,
        [&failures](const BenchScale &scale, const ObsOptions &,
                    ObsSink &) {
            printHeader("fig_policy_frontier",
                        "harvest-policy throughput/latency frontier");
            std::printf("servers=%u requests/VM=%u seed=%llu\n",
                        scale.servers, scale.requests,
                        static_cast<unsigned long long>(scale.seed));
            hh::cluster::SystemConfig cfg = hh::cluster::makeSystem(
                hh::cluster::SystemKind::HardHarvestBlock);
            applyScale(cfg, scale);
            const auto points =
                runPolicyFrontier(cfg, scale, /*workers=*/0);
            std::printf("\n");
            printPolicyFrontier(points);
            std::printf("\n");
            failures = checkPolicyFrontier(points);
        });
    return failures ? 1 : sink_rc;
}
