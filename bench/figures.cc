#include "figures.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "sim/log.h"

#include "cache/repl_belady.h"
#include "cache/repl_lru.h"
#include "cache/set_assoc.h"
#include "workload/batch.h"
#include "workload/service.h"

namespace hh::bench {

namespace {

using namespace hh::cache;

/** @name Figure 14 trace methodology (see fig14_l2_hitrate.cpp) @{ */

struct TraceEvent
{
    Addr key = 0;
    bool shared = false;
    bool primary = false; //!< Primary-VM reference (counted).
    bool flushHarvest = false; //!< Region-flush marker.
};

/**
 * Generate the post-L1 stream: invocations of one service, with a
 * harvest episode (batch accesses on the borrowed core, restricted
 * to the harvest ways) every few invocations.
 */
std::vector<TraceEvent>
makeTrace(const hh::workload::ServiceSpec &spec, std::uint64_t seed,
          unsigned invocations)
{
    hh::workload::ServiceWorkload svc(spec, 1, seed);
    hh::workload::BatchWorkload batch(
        hh::workload::batchByName("PRank"), 99, seed);

    // L1 filter shared by the whole stream (one physical core).
    SetAssocArray l1d(kL1D, std::make_unique<LruPolicy>());
    SetAssocArray l1i(kL1I, std::make_unique<LruPolicy>());

    std::vector<TraceEvent> trace;
    hh::sim::Rng rng(seed, 0xF16);
    for (unsigned inv = 0; inv < invocations; ++inv) {
        const auto plan = svc.planInvocation();
        for (int i = 0; i < 2500; ++i) {
            const auto a = svc.nextAccess(plan);
            const Addr key = a.page * kLinesPerPage + a.line;
            SetAssocArray &l1 = a.isInstr ? l1i : l1d;
            if (!l1.access(key, a.shared).hit) {
                trace.push_back(
                    {key, a.isInstr || a.shared, true, false});
            }
        }
        // Harvest episode on a fraction of invocation gaps.
        if (rng.bernoulli(0.125)) {
            trace.push_back({0, false, false, true});
            for (int i = 0; i < 200; ++i) {
                const auto a = batch.nextAccess();
                const Addr key = a.page * kLinesPerPage + a.line;
                SetAssocArray &l1 = a.isInstr ? l1i : l1d;
                // The borrowed core's L1 harvest region was flushed;
                // approximate with a plain lookup (the L2 effect is
                // what this experiment measures).
                if (!l1.access(key, false).hit)
                    trace.push_back({key, false, false, false});
            }
            trace.push_back({0, false, false, true});
        }
    }
    return trace;
}

/** Replay the trace into an L2 array with the given policy. */
double
replay(const std::vector<TraceEvent> &trace,
       std::unique_ptr<ReplacementPolicy> policy, double candidates)
{
    SetAssocArray l2(kL2, std::move(policy));
    l2.setHarvestWayCount(4); // 50% of 8 ways
    l2.setCandidateFraction(candidates);
    const WayMask harvest = l2.harvestWays();
    const WayMask all = l2.allWays();
    std::uint64_t hits = 0;
    std::uint64_t refs = 0;
    bool in_harvest = false;
    for (const auto &e : trace) {
        if (e.flushHarvest) {
            l2.flushWays(harvest);
            in_harvest = !in_harvest;
            continue;
        }
        const WayMask allowed = in_harvest ? harvest : all;
        const bool hit = l2.access(e.key, e.shared, allowed).hit;
        if (e.primary) {
            ++refs;
            hits += hit ? 1 : 0;
        }
    }
    return refs ? static_cast<double>(hits) /
                      static_cast<double>(refs)
                : 0.0;
}

/** Trace keys only (oracle construction). */
std::vector<Addr>
keysOf(const std::vector<TraceEvent> &trace)
{
    std::vector<Addr> keys;
    for (const auto &e : trace) {
        if (!e.flushHarvest)
            keys.push_back(e.key);
    }
    return keys;
}

/** Belady needs per-access bookkeeping; skip flush markers. */
double
replayBelady(const std::vector<TraceEvent> &trace)
{
    const auto keys = keysOf(trace);
    NextUseOracle oracle(keys);
    SetAssocArray l2(kL2, std::make_unique<BeladyPolicy>(oracle));
    l2.setHarvestWayCount(4);
    const WayMask harvest = l2.harvestWays();
    const WayMask all = l2.allWays();
    std::uint64_t hits = 0;
    std::uint64_t refs = 0;
    bool in_harvest = false;
    for (const auto &e : trace) {
        if (e.flushHarvest) {
            // The ideal bar is flush-free clairvoyant replacement:
            // an upper bound no online, flushed policy can reach.
            in_harvest = !in_harvest;
            continue;
        }
        const WayMask allowed = in_harvest ? harvest : all;
        const bool hit = l2.access(e.key, e.shared, allowed).hit;
        if (e.primary) {
            ++refs;
            hits += hit ? 1 : 0;
        }
    }
    return refs ? static_cast<double>(hits) /
                      static_cast<double>(refs)
                : 0.0;
}

/** @} */

/** Fixed invocation count of the Fig 14 methodology. */
constexpr unsigned kFig14Invocations = 60;

/** Hexfloat text round-trip of the four per-service hit rates. */
std::string
encodeRates(double lru, double rrip, double hh, double bel)
{
    std::ostringstream os;
    os << std::hexfloat << lru << ' ' << rrip << ' ' << hh << ' '
       << bel;
    return os.str();
}

bool
decodeRates(const std::string &text, double out[4])
{
    std::istringstream is(text);
    for (int i = 0; i < 4; ++i) {
        std::string tok;
        if (!(is >> tok))
            return false;
        char *end = nullptr;
        out[i] = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0')
            return false;
    }
    return true;
}

} // namespace

const std::vector<hh::cluster::SystemKind> &
evaluatedSystems()
{
    using hh::cluster::SystemKind;
    static const std::vector<SystemKind> kSystems = {
        SystemKind::NoHarvest, SystemKind::HarvestTerm,
        SystemKind::HarvestBlock, SystemKind::HardHarvestTerm,
        SystemKind::HardHarvestBlock};
    return kSystems;
}

// ---------------------------------------------------------- Fig 11

Fig11Harness::Fig11Harness(const BenchScale &scale,
                           const ObsOptions &obs)
    : scale_(scale)
{
    for (const auto kind : evaluatedSystems()) {
        hh::cluster::SystemConfig cfg = hh::cluster::makeSystem(kind);
        applyScale(cfg, scale_);
        applyObs(cfg, obs);
        cfgs_.push_back(cfg);
        series_.emplace_back(hh::cluster::systemName(kind));
    }
}

void
Fig11Harness::submit(hh::exp::JobScheduler &s)
{
    handles_.clear();
    for (const auto &cfg : cfgs_)
        handles_.push_back(s.addServer(cfg, "BFS", scale_.seed));
}

void
Fig11Harness::print(const hh::exp::JobScheduler &s,
                    ObsSink &sink) const
{
    printHeader("Figure 11",
                "P99 tail latency of Primary VMs, 5 systems [ms]");

    std::vector<hh::cluster::ServerResults> full;
    std::vector<std::vector<hh::cluster::ServiceResult>> runs;
    std::vector<double> avg_p99;
    for (std::size_t i = 0; i < handles_.size(); ++i) {
        hh::cluster::ServerResults res = s.serverResult(handles_[i]);
        sink.collect(res, series_[i]);
        runs.push_back(res.services);
        avg_p99.push_back(res.avgP99Ms());
        full.push_back(std::move(res));
    }

    printServiceTable(series_, runs, "p99[ms]",
                      [](const hh::cluster::ServiceResult &r) {
                          return r.p99Ms;
                      });

    std::printf("\nRatios vs NoHarvest (paper: 3.4x, 4.1x, 0.70x, "
                "0.72x):\n");
    for (std::size_t i = 1; i < series_.size(); ++i) {
        std::printf("  %-18s %.2fx\n", series_[i].c_str(),
                    avg_p99[i] / avg_p99[0]);
    }
    std::printf("Reduction of HardHarvest-Block vs Harvest-Term "
                "(paper: 83.3%%): %.1f%%\n",
                100.0 * (1.0 - avg_p99[4] / avg_p99[1]));

    std::printf("\n%-18s %10s %10s %10s\n", "system", "busyCores",
                "loans", "reclaims");
    for (std::size_t i = 0; i < series_.size(); ++i) {
        std::printf("%-18s %10.1f %10llu %10llu\n", series_[i].c_str(),
                    full[i].avgBusyCores,
                    static_cast<unsigned long long>(full[i].coreLoans),
                    static_cast<unsigned long long>(
                        full[i].coreReclaims));
    }
}

void
Fig11Harness::measure(const hh::exp::JobScheduler &s,
                      hh::exp::MeasurementSet &m) const
{
    std::vector<double> p99;
    std::vector<double> busy;
    for (const auto h : handles_) {
        const auto &res = s.serverResult(h);
        p99.push_back(res.avgP99Ms());
        busy.push_back(res.avgBusyCores);
    }
    m.set("fig11.noh_p99", p99[0]);
    m.set("fig11.ht_p99", p99[1]);
    m.set("fig11.hb_p99", p99[2]);
    m.set("fig11.hht_p99", p99[3]);
    m.set("fig11.hhb_p99", p99[4]);
    if (p99[0] > 0) {
        m.set("fig11.ht_over_noh", p99[1] / p99[0]);
        m.set("fig11.hb_over_noh", p99[2] / p99[0]);
        m.set("fig11.hht_over_noh", p99[3] / p99[0]);
        m.set("fig11.hhb_over_noh", p99[4] / p99[0]);
    }
    if (p99[1] > 0)
        m.set("fig11.hhb_reduction_vs_ht", 1.0 - p99[4] / p99[1]);

    // §6.7 rides on the same five runs.
    m.set("sec67.noh_busy", busy[0]);
    m.set("sec67.ht_busy", busy[1]);
    m.set("sec67.hb_busy", busy[2]);
    m.set("sec67.hht_busy", busy[3]);
    m.set("sec67.hhb_busy", busy[4]);
    m.set("sec67.sw_max_busy", std::max(busy[1], busy[2]));
    m.set("sec67.hw_min_busy", std::min(busy[3], busy[4]));
}

// ---------------------------------------------------------- Fig 14

Fig14Harness::Fig14Harness(const BenchScale &scale) : scale_(scale)
{
    for (const auto &spec : hh::workload::deathStarBenchServices())
        services_.push_back(spec.name);
}

void
Fig14Harness::submit(hh::exp::JobScheduler &s)
{
    handles_.clear();
    const auto services = hh::workload::deathStarBenchServices();
    for (const auto &spec : services) {
        const std::uint64_t seed = scale_.seed;
        handles_.push_back(s.addCustom(
            "fig14",
            "svc=" + spec.name +
                " inv=" + std::to_string(kFig14Invocations),
            seed, [spec, seed] {
                using hh::cache::makePolicy;
                using hh::cache::ReplKind;
                const auto trace =
                    makeTrace(spec, seed, kFig14Invocations);
                const double lru =
                    replay(trace, makePolicy(ReplKind::LRU), 1.0);
                const double rrip =
                    replay(trace, makePolicy(ReplKind::RRIP), 1.0);
                const double hh = replay(
                    trace, makePolicy(ReplKind::HardHarvest), 0.75);
                const double bel = replayBelady(trace);
                return encodeRates(lru, rrip, hh, bel);
            }));
    }
}

std::vector<Fig14Harness::Rates>
Fig14Harness::rates(const hh::exp::JobScheduler &s) const
{
    std::vector<Rates> out;
    for (const auto h : handles_) {
        double v[4];
        if (!decodeRates(s.payload(h), v))
            hh::sim::fatal("Fig14Harness: job payload does not "
                           "decode; delete the result ledger");
        out.push_back({v[0], v[1], v[2], v[3]});
    }
    return out;
}

void
Fig14Harness::print(const hh::exp::JobScheduler &s) const
{
    printHeader("Figure 14",
                "L2 hit rate under different replacement policies");

    std::printf("%-10s %10s %10s %12s %10s\n", "service", "LRU",
                "RRIP", "HardHarvest", "Belady");
    double a_lru = 0;
    double a_rrip = 0;
    double a_hh = 0;
    double a_bel = 0;
    const auto all = rates(s);
    for (std::size_t i = 0; i < services_.size(); ++i) {
        const Rates &r = all[i];
        std::printf("%-10s %9.1f%% %9.1f%% %11.1f%% %9.1f%%\n",
                    services_[i].c_str(), r.lru * 100, r.rrip * 100,
                    r.hh * 100, r.bel * 100);
        a_lru += r.lru;
        a_rrip += r.rrip;
        a_hh += r.hh;
        a_bel += r.bel;
    }
    const double n = static_cast<double>(services_.size());
    std::printf("%-10s %9.1f%% %9.1f%% %11.1f%% %9.1f%%\n", "Avg",
                a_lru / n * 100, a_rrip / n * 100, a_hh / n * 100,
                a_bel / n * 100);
    std::printf("\nHardHarvest vs LRU:  +%.1f%% (paper: +11.3%%)\n",
                (a_hh - a_lru) / n * 100);
    std::printf("HardHarvest vs RRIP: +%.1f%% (paper: +8.2%%)\n",
                (a_hh - a_rrip) / n * 100);
    std::printf("Belady - HardHarvest: %.1f%% (paper: 3.1%%)\n",
                (a_bel - a_hh) / n * 100);
}

void
Fig14Harness::measure(const hh::exp::JobScheduler &s,
                      hh::exp::MeasurementSet &m) const
{
    double a_lru = 0, a_rrip = 0, a_hh = 0, a_bel = 0;
    const auto all = rates(s);
    for (const Rates &r : all) {
        a_lru += r.lru;
        a_rrip += r.rrip;
        a_hh += r.hh;
        a_bel += r.bel;
    }
    const double n = static_cast<double>(all.size());
    m.set("fig14.lru", a_lru / n);
    m.set("fig14.rrip", a_rrip / n);
    m.set("fig14.hh", a_hh / n);
    m.set("fig14.belady", a_bel / n);
    m.set("fig14.hh_minus_lru", (a_hh - a_lru) / n);
    m.set("fig14.hh_minus_rrip", (a_hh - a_rrip) / n);
    m.set("fig14.belady_minus_hh", (a_bel - a_hh) / n);
}

// ---------------------------------------------------------- Fig 17

Fig17Harness::Fig17Harness(const BenchScale &scale,
                           const ObsOptions &obs)
    : scale_(scale)
{
    const auto apps = hh::workload::batchApplications();
    const unsigned n_apps = std::min<unsigned>(
        scale_.servers, static_cast<unsigned>(apps.size()));
    for (unsigned a = 0; a < n_apps; ++a)
        apps_.push_back(apps[a].name);
    for (const auto kind : evaluatedSystems()) {
        hh::cluster::SystemConfig cfg = hh::cluster::makeSystem(kind);
        applyScale(cfg, scale_);
        applyObs(cfg, obs);
        cfgs_.push_back(cfg);
    }
}

void
Fig17Harness::submit(hh::exp::JobScheduler &s)
{
    handles_.clear();
    for (const auto &app : apps_) {
        for (const auto &cfg : cfgs_)
            handles_.push_back(s.addServer(cfg, app, scale_.seed));
    }
}

void
Fig17Harness::print(const hh::exp::JobScheduler &s,
                    ObsSink &sink) const
{
    printHeader("Figure 17",
                "Harvest VM throughput normalized to NoHarvest");

    std::printf("%-10s", "app");
    for (const auto kind : evaluatedSystems())
        std::printf(" %18s", hh::cluster::systemName(kind));
    std::printf("\n");

    const std::size_t n_sys = cfgs_.size();
    std::vector<double> avg(n_sys, 0.0);
    for (std::size_t a = 0; a < apps_.size(); ++a) {
        std::vector<double> tput;
        for (std::size_t k = 0; k < n_sys; ++k) {
            hh::cluster::ServerResults res =
                s.serverResult(handles_[a * n_sys + k]);
            sink.collect(
                res, apps_[a] + "/" +
                         hh::cluster::systemName(
                             evaluatedSystems()[k]));
            tput.push_back(res.batchThroughput);
        }
        std::printf("%-10s", apps_[a].c_str());
        for (std::size_t k = 0; k < tput.size(); ++k) {
            const double norm = tput[k] / tput[0];
            avg[k] += norm;
            std::printf(" %18.2f", norm);
        }
        std::printf("\n");
    }
    std::printf("%-10s", "Average");
    for (std::size_t k = 0; k < avg.size(); ++k)
        std::printf(" %18.2f",
                    avg[k] / static_cast<double>(apps_.size()));
    std::printf("\n\n(paper averages: 1.0, 1.7x, ~1.9x, ~2.8x, "
                "3.1x)\n");
}

void
Fig17Harness::measure(const hh::exp::JobScheduler &s,
                      hh::exp::MeasurementSet &m) const
{
    const std::size_t n_sys = cfgs_.size();
    std::vector<double> avg(n_sys, 0.0);
    for (std::size_t a = 0; a < apps_.size(); ++a) {
        const double base =
            s.serverResult(handles_[a * n_sys]).batchThroughput;
        if (base <= 0)
            return;
        for (std::size_t k = 0; k < n_sys; ++k) {
            avg[k] += s.serverResult(handles_[a * n_sys + k])
                          .batchThroughput /
                      base;
        }
    }
    const double n = static_cast<double>(apps_.size());
    m.set("fig17.ht_norm", avg[1] / n);
    m.set("fig17.hb_norm", avg[2] / n);
    m.set("fig17.hht_norm", avg[3] / n);
    m.set("fig17.hhb_norm", avg[4] / n);
}

} // namespace hh::bench
