/**
 * @file
 * Figure 19: P99 tail latency of Primary VMs with HardHarvest-Block
 * and different eviction-candidate set sizes (25%, 50%, 75%, 100%
 * of ways).
 *
 * Paper: 75% is the sweet spot — smaller sets cannot preserve
 * shared lines, 100% keeps evicting needed private lines.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 19",
                "HardHarvest P99 vs eviction-candidate size [ms]");

    const double sizes[] = {0.25, 0.5, 0.75, 1.0};
    std::vector<std::string> series;
    std::vector<std::vector<ServiceResult>> runs;
    std::vector<double> avg;
    for (const double m : sizes) {
        SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
        applyScale(cfg, scale);
        cfg.candidateFraction = m;
        applyObs(cfg, obs);
        auto res = runServer(cfg, "BFS", scale.seed);
        char label[16];
        std::snprintf(label, sizeof label, "%.0f%%", m * 100);
        sink.collect(res, label);
        series.emplace_back(label);
        runs.push_back(res.services);
        avg.push_back(res.avgP99Ms());
    }

    printServiceTable(series, runs, "p99[ms]",
                      [](const ServiceResult &r) { return r.p99Ms; });
    std::printf("\nAvg tail vs 75%% (paper: 75%% is best):\n");
    for (std::size_t i = 0; i < series.size(); ++i)
        std::printf("  %-5s %.3fx\n", series[i].c_str(),
                    avg[i] / avg[2]);
    return sink.finish();
}
