/**
 * @file
 * Figure harnesses shared by the legacy per-figure binaries and the
 * experiment engine driver (`repro_all`).
 *
 * Each harness splits a figure into the three stages the JobScheduler
 * needs: `submit()` registers the figure's jobs (deduplicated against
 * any other figure's in the same scheduler — fig11's five BFS runs
 * *are* fig17's BFS column), `print()` renders the figure's stdout
 * byte-identically to the pre-engine binaries, and `measure()` fills
 * the named measurements the FidelityGate checks
 * (src/exp/fidelity.h).
 */

#ifndef HH_BENCH_FIGURES_H
#define HH_BENCH_FIGURES_H

#include <vector>

#include "bench_util.h"
#include "exp/fidelity.h"
#include "exp/scheduler.h"

namespace hh::bench {

/** The five evaluated systems, in figure order. */
const std::vector<hh::cluster::SystemKind> &evaluatedSystems();

/** Figure 11: P99 tail latency of the 5 systems (+ §6.7 busy cores). */
class Fig11Harness
{
  public:
    Fig11Harness(const BenchScale &scale, const ObsOptions &obs);

    void submit(hh::exp::JobScheduler &s);
    /** Legacy-identical stdout; observability into @p sink. */
    void print(const hh::exp::JobScheduler &s, ObsSink &sink) const;
    void measure(const hh::exp::JobScheduler &s,
                 hh::exp::MeasurementSet &m) const;

  private:
    BenchScale scale_;
    std::vector<std::string> series_;
    std::vector<hh::cluster::SystemConfig> cfgs_;
    std::vector<hh::exp::JobScheduler::Handle> handles_;
};

/** Figure 14: L2 hit rate under four replacement policies. */
class Fig14Harness
{
  public:
    explicit Fig14Harness(const BenchScale &scale);

    void submit(hh::exp::JobScheduler &s);
    void print(const hh::exp::JobScheduler &s) const;
    void measure(const hh::exp::JobScheduler &s,
                 hh::exp::MeasurementSet &m) const;

  private:
    /** Per-service hit rates, decoded from the job payloads. */
    struct Rates
    {
        double lru = 0, rrip = 0, hh = 0, bel = 0;
    };
    std::vector<Rates> rates(const hh::exp::JobScheduler &s) const;

    BenchScale scale_;
    std::vector<std::string> services_;
    std::vector<hh::exp::JobScheduler::Handle> handles_;
};

/** Figure 17: Harvest VM throughput normalized to NoHarvest. */
class Fig17Harness
{
  public:
    Fig17Harness(const BenchScale &scale, const ObsOptions &obs);

    void submit(hh::exp::JobScheduler &s);
    void print(const hh::exp::JobScheduler &s, ObsSink &sink) const;
    void measure(const hh::exp::JobScheduler &s,
                 hh::exp::MeasurementSet &m) const;

  private:
    BenchScale scale_;
    std::vector<std::string> apps_;
    std::vector<hh::cluster::SystemConfig> cfgs_; //!< Per system.
    /** handles_[app * 5 + system]. */
    std::vector<hh::exp::JobScheduler::Handle> handles_;
};

} // namespace hh::bench

#endif // HH_BENCH_FIGURES_H
