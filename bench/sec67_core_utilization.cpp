/**
 * @file
 * Section 6.7: average core utilization (busy cores out of 36) for
 * the five evaluated architectures.
 *
 * Paper: 10.3, 23.8, 26.5, 28.7, 34.8 busy cores; HardHarvest-Block
 * increases utilization 1.5x over Harvest-Term and 3.4x over
 * NoHarvest.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Section 6.7", "average busy cores out of 36");

    const SystemKind kinds[] = {
        SystemKind::NoHarvest, SystemKind::HarvestTerm,
        SystemKind::HarvestBlock, SystemKind::HardHarvestTerm,
        SystemKind::HardHarvestBlock};
    const double paper[] = {10.3, 23.8, 26.5, 28.7, 34.8};

    std::printf("%-18s %12s %12s %10s\n", "system", "busy cores",
                "paper", "util");
    std::vector<double> busy;
    for (std::size_t i = 0; i < 5; ++i) {
        SystemConfig cfg = makeSystem(kinds[i]);
        applyScale(cfg, scale);
        applyObs(cfg, obs);
        auto res = runServer(cfg, "BFS", scale.seed);
        sink.collect(res, systemName(kinds[i]));
        busy.push_back(res.avgBusyCores);
        std::printf("%-18s %12.1f %12.1f %9.1f%%\n",
                    systemName(kinds[i]), res.avgBusyCores, paper[i],
                    res.utilization * 100);
    }
    std::printf("\nHardHarvest-Block vs Harvest-Term: %.2fx "
                "(paper: 1.5x)\n", busy[4] / busy[1]);
    std::printf("HardHarvest-Block vs NoHarvest:    %.2fx "
                "(paper: 3.4x)\n", busy[4] / busy[0]);
    return sink.finish();
}
