/**
 * @file
 * Figure 15: cumulative impact of HardHarvest optimizations on the
 * P99 tail latency of Primary VMs with core harvesting DISABLED:
 * +Sched, +Queue, +CtxtSw, +ReplPolicy.
 *
 * Paper: cumulative reductions of 14.5%, 20.1%, 28.6%, 33.6%.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 15",
                "optimizations without harvesting, P99 [ms]");

    enum Step
    {
        Base,
        Sched,
        Queue,
        CtxtSw,
        Repl,
    };
    const char *names[] = {"NoHarvest", "+Sched", "+Queue", "+CtxtSw",
                           "+ReplPolicy"};

    std::vector<std::string> series;
    std::vector<std::vector<ServiceResult>> runs;
    std::vector<double> avg;
    for (int step = Base; step <= Repl; ++step) {
        SystemConfig cfg = makeSystem(SystemKind::NoHarvest);
        applyScale(cfg, scale);
        cfg.hwSched = step >= Sched;
        cfg.hwQueue = step >= Queue;
        cfg.hwCtxtSwitch = step >= CtxtSw;
        cfg.repl = step >= Repl ? hh::cache::ReplKind::HardHarvest
                                : hh::cache::ReplKind::LRU;
        applyObs(cfg, obs);
        auto res = runServer(cfg, "BFS", scale.seed);
        sink.collect(res, names[step]);
        series.emplace_back(names[step]);
        runs.push_back(res.services);
        avg.push_back(res.avgP99Ms());
    }

    printServiceTable(series, runs, "p99[ms]",
                      [](const ServiceResult &r) { return r.p99Ms; });
    std::printf("\nCumulative reduction vs NoHarvest (paper: 14.5 "
                "20.1 28.6 33.6 %%):\n");
    for (std::size_t i = Sched; i < series.size(); ++i)
        std::printf("  %-12s %.1f%%\n", series[i].c_str(),
                    100.0 * (1.0 - avg[i] / avg[0]));
    return sink.finish();
}
