/**
 * @file
 * Figure 6: execution time of a single service request in steady
 * state without core harvesting (left) and with software core
 * harvesting (right), broken into core reassignment, flush /
 * invalidation, and execution.
 *
 * Paper: requests take 1.9x longer with software harvesting, and
 * execution itself is 1.2x longer due to cold structures.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 6",
                "single-request time breakdown (mean) [ms]");

    SystemConfig no = makeSystem(SystemKind::NoHarvest);
    applyScale(no, scale);
    applyObs(no, obs);
    auto base = runServer(no, "BFS", scale.seed);
    sink.collect(base, "NoHarvest");

    SystemConfig hv = makeSystem(SystemKind::HarvestBlock);
    applyScale(hv, scale);
    applyObs(hv, obs);
    auto harv = runServer(hv, "BFS", scale.seed);
    sink.collect(harv, "Harvesting");

    std::printf("%-10s %-12s %10s %10s %10s %10s\n", "service",
                "system", "reassign", "flush", "exec", "total");
    double base_total = 0;
    double harv_total = 0;
    double base_exec = 0;
    double harv_exec = 0;
    for (std::size_t i = 0; i < base.services.size(); ++i) {
        const auto &b = base.services[i];
        const auto &h = harv.services[i];
        std::printf("%-10s %-12s %10.3f %10.3f %10.3f %10.3f\n",
                    b.name.c_str(), "NoHarvest", b.reassignMs,
                    b.flushMs, b.execMs,
                    b.reassignMs + b.flushMs + b.execMs);
        std::printf("%-10s %-12s %10.3f %10.3f %10.3f %10.3f\n", "",
                    "Harvesting", h.reassignMs, h.flushMs, h.execMs,
                    h.reassignMs + h.flushMs + h.execMs);
        base_total += b.reassignMs + b.flushMs + b.execMs;
        harv_total += h.reassignMs + h.flushMs + h.execMs;
        base_exec += b.execMs;
        harv_exec += h.execMs;
    }
    std::printf("\nAvg request time with harvesting: %.2fx (paper: "
                "1.9x)\n", harv_total / base_total);
    std::printf("Avg execution (cold structures):  %.2fx (paper: "
                "1.2x)\n", harv_exec / base_exec);
    return sink.finish();
}
