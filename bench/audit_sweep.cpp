/**
 * @file
 * Long audit sweep driver for the manual nightly CI job: a full
 * cluster run with the invariant auditor force-enabled, checkpointed
 * periodically so a killed or timed-out sweep resumes from the last
 * checkpoint instead of replaying the whole prefix.
 *
 * Usage:  audit_sweep [--checkpoint-every ms] [--checkpoint-file p]
 *   Scale comes from HH_REQUESTS / HH_SERVERS / HH_SAMPLING /
 *   HH_SEED as in every bench. Exit is nonzero when the auditor
 *   reports a violation; the pre-violation checkpoint written next to
 *   the checkpoint file then reproduces it via load + short replay
 *   (see docs/SNAPSHOT.md).
 */

#include <cstdio>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    const ObsOptions obs = parseObsArgs(argc, argv);
    const BenchScale scale(/*def_servers=*/8,
                           /*def_requests=*/800);
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    applyScale(cfg, scale);
    cfg.auditEnabled = true;

    const unsigned workers = resolveWorkers(0, scale.servers);
    printHeader("audit_sweep",
                "audit-enabled resumable cluster sweep");
    std::printf("servers=%u requests/VM=%u workers=%u seed=%llu\n",
                scale.servers, scale.requests, workers,
                static_cast<unsigned long long>(scale.seed));

    const ClusterResults res = runClusterResumable(
        cfg, scale.servers, scale.seed, workers, obs);

    std::printf("audits=%llu violations=%llu faults=%llu\n",
                static_cast<unsigned long long>(res.auditsRun),
                static_cast<unsigned long long>(res.auditViolations),
                static_cast<unsigned long long>(res.faultsInjected));
    for (const auto &[srv, v] : res.auditReports)
        std::printf("violation server%u [%s] t=%llu %s\n", srv,
                    v.component.c_str(),
                    static_cast<unsigned long long>(v.time),
                    v.message.c_str());
    if (res.auditViolations != 0) {
        std::fprintf(stderr,
                     "audit sweep found %llu invariant violations\n",
                     static_cast<unsigned long long>(
                         res.auditViolations));
        return 1;
    }
    std::printf("sweep clean\n");
    return 0;
}
