/**
 * @file
 * Shared harvest-policy frontier sweep: one telemetry-free cluster
 * run per policy in {legacy, static, hysteresis, critical, bandit},
 * rendered as a batch-throughput vs request-P99 frontier table plus
 * two machine-checked `policy-check` lines:
 *
 *   policy-check static==legacy: PASS|FAIL
 *       StaticPolicy must be bit-identical to the legacy inlined
 *       knob reads (ClusterResults::serialized() equality) — the
 *       regression guard on the policy extraction.
 *   policy-check hysteresis>=static: PASS|FAIL
 *       The first adaptive policy must not lose batch throughput
 *       against the frozen baseline at this scale.
 *
 * Used by fig_policy_frontier and `repro_all --policies` so both
 * print byte-identical tables; CI greps the PASS lines.
 */

#ifndef HH_BENCH_POLICY_FRONTIER_H
#define HH_BENCH_POLICY_FRONTIER_H

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "policy/harvest_policy.h"

namespace hh::bench {

/** One policy's cluster run in the frontier sweep. */
struct PolicyPoint
{
    std::string policy;
    hh::cluster::ClusterResults results;
};

/** Mean batch throughput (tasks/sec) across the cluster's servers. */
inline double
meanBatchThroughput(const hh::cluster::ClusterResults &res)
{
    if (res.batchThroughput.empty())
        return 0.0;
    double sum = 0;
    for (const auto &[app, tput] : res.batchThroughput)
        sum += tput;
    return sum / static_cast<double>(res.batchThroughput.size());
}

/**
 * Run the frontier: every known policy (including the differential
 * "legacy" baseline) over the same scale, seed, and worker count.
 */
inline std::vector<PolicyPoint>
runPolicyFrontier(const hh::cluster::SystemConfig &base,
                  const BenchScale &scale, unsigned workers)
{
    std::vector<PolicyPoint> points;
    for (const std::string &name : hh::policy::harvestPolicyNames()) {
        hh::cluster::SystemConfig cfg = base;
        cfg.policy = name;
        std::printf("running policy=%s...\n", name.c_str());
        points.push_back({name,
                          hh::cluster::runCluster(cfg, scale.servers,
                                                  scale.seed, workers)});
    }
    return points;
}

/** The frontier table: throughput vs tail latency per policy. */
inline void
printPolicyFrontier(const std::vector<PolicyPoint> &points)
{
    std::printf("%-12s %12s %10s %10s %10s %10s\n", "policy",
                "batchTput", "p99[ms]", "p50[ms]", "loans",
                "reclaims");
    for (const auto &p : points) {
        std::printf("%-12s %12.2f %10.3f %10.3f %10llu %10llu\n",
                    p.policy.c_str(), meanBatchThroughput(p.results),
                    p.results.avgP99Ms(), p.results.avgP50Ms(),
                    static_cast<unsigned long long>(
                        p.results.coreLoans),
                    static_cast<unsigned long long>(
                        p.results.coreReclaims));
    }
}

/**
 * The two frontier invariants; prints one grep-able line each and
 * returns the number of failures.
 */
inline int
checkPolicyFrontier(const std::vector<PolicyPoint> &points)
{
    const PolicyPoint *legacy = nullptr;
    const PolicyPoint *stat = nullptr;
    const PolicyPoint *hyst = nullptr;
    for (const auto &p : points) {
        if (p.policy == "legacy")
            legacy = &p;
        else if (p.policy == "static")
            stat = &p;
        else if (p.policy == "hysteresis")
            hyst = &p;
    }
    int failures = 0;
    if (legacy && stat) {
        const bool ok = stat->results.serialized() ==
                        legacy->results.serialized();
        std::printf("policy-check static==legacy: %s\n",
                    ok ? "PASS" : "FAIL");
        failures += ok ? 0 : 1;
    }
    if (stat && hyst) {
        const double s = meanBatchThroughput(stat->results);
        const double h = meanBatchThroughput(hyst->results);
        const bool ok = h >= s;
        std::printf("policy-check hysteresis>=static: %s "
                    "(%.2f vs %.2f tasks/s)\n",
                    ok ? "PASS" : "FAIL", h, s);
        failures += ok ? 0 : 1;
    }
    return failures;
}

} // namespace hh::bench

#endif // HH_BENCH_POLICY_FRONTIER_H
