/**
 * @file
 * Figure 11: P99 tail latency of microservices in Primary VMs for
 * the five evaluated architectures (lower is better).
 *
 * Paper headline: Harvest-Term / Harvest-Block average 3.4x / 4.1x
 * NoHarvest; HardHarvest-Term/Block reduce Harvest-Term's tail by
 * ~83% and land 30.5% / 28.4% below NoHarvest.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 11",
                "P99 tail latency of Primary VMs, 5 systems [ms]");

    const SystemKind kinds[] = {
        SystemKind::NoHarvest, SystemKind::HarvestTerm,
        SystemKind::HarvestBlock, SystemKind::HardHarvestTerm,
        SystemKind::HardHarvestBlock};

    std::vector<std::string> series;
    std::vector<SystemConfig> cfgs;
    for (const SystemKind kind : kinds) {
        SystemConfig cfg = makeSystem(kind);
        applyScale(cfg, scale);
        applyObs(cfg, obs);
        cfgs.push_back(cfg);
        series.emplace_back(systemName(kind));
    }
    std::vector<ServerResults> full =
        runServerSweep(cfgs, "BFS", scale.seed);

    std::vector<std::vector<ServiceResult>> runs;
    std::vector<double> avg_p99;
    for (std::size_t i = 0; i < full.size(); ++i) {
        ServerResults &res = full[i];
        sink.collect(res, series[i]);
        runs.push_back(res.services);
        avg_p99.push_back(res.avgP99Ms());
    }

    printServiceTable(series, runs, "p99[ms]",
                      [](const ServiceResult &r) { return r.p99Ms; });

    std::printf("\nRatios vs NoHarvest (paper: 3.4x, 4.1x, 0.70x, "
                "0.72x):\n");
    for (std::size_t i = 1; i < series.size(); ++i) {
        std::printf("  %-18s %.2fx\n", series[i].c_str(),
                    avg_p99[i] / avg_p99[0]);
    }
    std::printf("Reduction of HardHarvest-Block vs Harvest-Term "
                "(paper: 83.3%%): %.1f%%\n",
                100.0 * (1.0 - avg_p99[4] / avg_p99[1]));

    std::printf("\n%-18s %10s %10s %10s\n", "system", "busyCores",
                "loans", "reclaims");
    for (std::size_t i = 0; i < series.size(); ++i) {
        std::printf("%-18s %10.1f %10llu %10llu\n", series[i].c_str(),
                    full[i].avgBusyCores,
                    static_cast<unsigned long long>(full[i].coreLoans),
                    static_cast<unsigned long long>(
                        full[i].coreReclaims));
    }
    return sink.finish();
}
