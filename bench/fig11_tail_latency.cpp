/**
 * @file
 * Figure 11: P99 tail latency of microservices in Primary VMs for
 * the five evaluated architectures (lower is better).
 *
 * Paper headline: Harvest-Term / Harvest-Block average 3.4x / 4.1x
 * NoHarvest; HardHarvest-Term/Block reduce Harvest-Term's tail by
 * ~83% and land 30.5% / 28.4% below NoHarvest.
 *
 * Thin wrapper over Fig11Harness (figures.h): the same jobs, run
 * through the experiment engine's scheduler, render byte-identically
 * to the pre-engine binary. `bench/repro_all` runs the same harness
 * with memoization and fidelity gating on top.
 */

#include "figures.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    return figureMain(argc, argv,
                      [](const BenchScale &scale, const ObsOptions &obs,
                         ObsSink &sink) {
                          Fig11Harness fig(scale, obs);
                          hh::exp::JobScheduler sched;
                          fig.submit(sched);
                          sched.run();
                          fig.print(sched, sink);
                      });
}
