/**
 * @file
 * Figure 4: P99 tail latency of Primary-VM microservices with the
 * hypervisor overheads of core reassignment (no cache flushing; the
 * Harvest VM is always idle).
 *
 * Bars: No-Move, KVM-Term, KVM-Block, Opt-Term, Opt-Block.
 * Paper: 3.2x, 3.8x, 2.7x, 3.1x average tail increase.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 4",
                "P99 tail with hypervisor reassignment only [ms]");

    struct Variant
    {
        const char *name;
        bool harvesting;
        bool onBlock;
        hh::vm::ReassignImpl impl;
    };
    const Variant variants[] = {
        {"No-Move", false, false, hh::vm::ReassignImpl::Kvm},
        {"KVM-Term", true, false, hh::vm::ReassignImpl::Kvm},
        {"KVM-Block", true, true, hh::vm::ReassignImpl::Kvm},
        {"Opt-Term", true, false, hh::vm::ReassignImpl::Optimized},
        {"Opt-Block", true, true, hh::vm::ReassignImpl::Optimized},
    };

    std::vector<std::string> series;
    std::vector<std::vector<ServiceResult>> runs;
    std::vector<double> avg;
    for (const auto &v : variants) {
        SystemConfig cfg = makeSystem(v.harvesting
                                          ? SystemKind::HarvestTerm
                                          : SystemKind::NoHarvest);
        applyScale(cfg, scale);
        cfg.harvesting = v.harvesting;
        cfg.harvestOnBlock = v.onBlock;
        cfg.swImpl = v.impl;
        // Fig 4 isolates reassignment: the Harvest VM is idle and
        // caches are NOT flushed on a core move.
        cfg.harvestVmIdle = true;
        cfg.swFlushOnReassign = false;
        applyObs(cfg, obs);
        auto res = runServer(cfg, "BFS", scale.seed);
        sink.collect(res, v.name);
        series.emplace_back(v.name);
        runs.push_back(res.services);
        avg.push_back(res.avgP99Ms());
    }

    printServiceTable(series, runs, "p99[ms]",
                      [](const ServiceResult &r) { return r.p99Ms; });
    std::printf("\nTail increase vs No-Move (paper: 3.2x 3.8x 2.7x "
                "3.1x):\n");
    for (std::size_t i = 1; i < series.size(); ++i)
        std::printf("  %-10s %.2fx\n", series[i].c_str(),
                    avg[i] / avg[0]);
    return sink.finish();
}
