/**
 * @file
 * The seed EventQueue implementation, kept verbatim (modulo the
 * class name) as the baseline for event-queue benchmarks:
 * std::function callbacks, a hash map from id to callback, and a
 * hash set of cancelled ids consulted on every pop.
 *
 * Benchmark-only code — the simulator uses hh::sim::EventQueue.
 */

#ifndef HH_BENCH_LEGACY_EVENT_QUEUE_H
#define HH_BENCH_LEGACY_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace hh::bench {

class LegacyEventQueue
{
  public:
    using EventId = std::uint64_t;
    using Callback = std::function<void()>;

    EventId
    schedule(hh::sim::Cycles when, Callback cb)
    {
        const EventId id = next_id_++;
        heap_.push(Entry{when, next_seq_++, id});
        callbacks_.emplace(id, std::move(cb));
        ++live_;
        return id;
    }

    bool
    cancel(EventId id)
    {
        const auto it = callbacks_.find(id);
        if (it == callbacks_.end())
            return false;
        callbacks_.erase(it);
        cancelled_.insert(id);
        --live_;
        return true;
    }

    bool empty() const { return live_ == 0; }

    Callback
    pop(hh::sim::Cycles &when)
    {
        skipDead();
        const Entry top = heap_.top();
        heap_.pop();
        when = top.when;
        const auto it = callbacks_.find(top.id);
        Callback cb = std::move(it->second);
        callbacks_.erase(it);
        --live_;
        return cb;
    }

  private:
    struct Entry
    {
        hh::sim::Cycles when;
        std::uint64_t seq;
        EventId id;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void
    skipDead()
    {
        while (!heap_.empty() &&
               cancelled_.find(heap_.top().id) != cancelled_.end()) {
            cancelled_.erase(heap_.top().id);
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> cancelled_;
    std::unordered_map<EventId, Callback> callbacks_;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    std::size_t live_ = 0;
};

/**
 * One round of a parameterized schedule/cancel/pop mix: keep a
 * window of pending events; each round schedules one @p horizon
 * cycles ahead at most, cancels a superseded timer with probability
 * @p cancelProb, and pops one.
 *
 * The three workload presets the shootout benchmarks use:
 *  - near-future-heavy: horizon 50, cancel 0.25 (the server mix —
 *    most timers land in the wheel's level-0 window);
 *  - far-future-heavy: horizon 1<<20, cancel 0.25 (events spread
 *    across coarse wheel levels and the far heap, maximizing
 *    cascade work);
 *  - cancel-heavy:     horizon 50, cancel 0.75 (dead-node skipping
 *    and compaction dominate).
 *
 * @return An accumulator defeating dead-code elimination.
 */
template <typename Queue, typename Rng>
std::uint64_t
eventQueueMixRound(Queue &q, Rng &rng, hh::sim::Cycles &now,
                   std::vector<typename Queue::EventId> &pending,
                   std::uint64_t &sink,
                   hh::sim::Cycles horizon = 50,
                   double cancelProb = 0.25)
{
    pending.push_back(
        q.schedule(now + 1 + rng.uniformInt(std::uint64_t{horizon}),
                   [&sink] { ++sink; }));
    if (rng.bernoulli(cancelProb) && !pending.empty()) {
        const auto victim =
            rng.uniformInt(std::uint64_t{pending.size()});
        q.cancel(pending[victim]);
        pending[victim] = pending.back();
        pending.pop_back();
    }
    if (!q.empty()) {
        auto cb = q.pop(now);
        if (cb)
            cb();
    }
    return sink;
}

/** Workload presets for the event-queue shootout (see above). */
struct QueueMixPreset
{
    const char *name;
    hh::sim::Cycles horizon;
    double cancelProb;
};

inline constexpr QueueMixPreset kQueueMixPresets[] = {
    {"near", 50, 0.25},
    {"far", hh::sim::Cycles{1} << 20, 0.25},
    {"cancel", 50, 0.75},
};

} // namespace hh::bench

#endif // HH_BENCH_LEGACY_EVENT_QUEUE_H
