/**
 * @file
 * Figure 14: L2 cache hit rate under four replacement policies:
 * vanilla LRU, RRIP, the HardHarvest policy (Algorithm 1), and the
 * offline-optimal Belady.
 *
 * Methodology lives in Fig14Harness (bench/figures.cc): for each
 * service we generate the post-L1 access stream of a
 * HardHarvest-Block-like core, then replay the identical stream into
 * an L2-configured array per policy. The Belady oracle is built from
 * the same stream.
 *
 * Paper: HardHarvest improves the L2 hit rate over LRU and RRIP by
 * 11.3% and 8.2%, and is within 3.1% of Belady.
 */

#include "figures.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    return figureMain(argc, argv,
                      [](const BenchScale &scale, const ObsOptions &,
                         ObsSink &) {
                          Fig14Harness fig(scale);
                          hh::exp::JobScheduler sched;
                          fig.submit(sched);
                          sched.run();
                          fig.print(sched);
                      });
}
