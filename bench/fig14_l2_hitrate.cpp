/**
 * @file
 * Figure 14: L2 cache hit rate under four replacement policies:
 * vanilla LRU, RRIP, the HardHarvest policy (Algorithm 1), and the
 * offline-optimal Belady.
 *
 * Methodology: for each service we generate the post-L1 access
 * stream of a HardHarvest-Block-like core — interleaving Primary
 * invocations with Harvest-VM episodes on the borrowed core and the
 * harvest-region flushes at every transition — then replay the
 * identical stream into an L2-configured array per policy. The
 * Belady oracle is built from the same stream.
 *
 * Paper: HardHarvest improves the L2 hit rate over LRU and RRIP by
 * 11.3% and 8.2%, and is within 3.1% of Belady.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cache/repl_belady.h"
#include "cache/repl_lru.h"
#include "cache/set_assoc.h"
#include "workload/batch.h"
#include "workload/service.h"

namespace {

using namespace hh::cache;

struct TraceEvent
{
    Addr key = 0;
    bool shared = false;
    bool primary = false; //!< Primary-VM reference (counted).
    bool flushHarvest = false; //!< Region-flush marker.
};

/**
 * Generate the post-L1 stream: invocations of one service, with a
 * harvest episode (batch accesses on the borrowed core, restricted
 * to the harvest ways) every few invocations.
 */
std::vector<TraceEvent>
makeTrace(const hh::workload::ServiceSpec &spec, std::uint64_t seed,
          unsigned invocations)
{
    hh::workload::ServiceWorkload svc(spec, 1, seed);
    hh::workload::BatchWorkload batch(
        hh::workload::batchByName("PRank"), 99, seed);

    // L1 filter shared by the whole stream (one physical core).
    SetAssocArray l1d(kL1D, std::make_unique<LruPolicy>());
    SetAssocArray l1i(kL1I, std::make_unique<LruPolicy>());

    std::vector<TraceEvent> trace;
    hh::sim::Rng rng(seed, 0xF16);
    for (unsigned inv = 0; inv < invocations; ++inv) {
        const auto plan = svc.planInvocation();
        for (int i = 0; i < 2500; ++i) {
            const auto a = svc.nextAccess(plan);
            const Addr key = a.page * kLinesPerPage + a.line;
            SetAssocArray &l1 = a.isInstr ? l1i : l1d;
            if (!l1.access(key, a.shared).hit) {
                trace.push_back(
                    {key, a.isInstr || a.shared, true, false});
            }
        }
        // Harvest episode on a fraction of invocation gaps.
        if (rng.bernoulli(0.125)) {
            trace.push_back({0, false, false, true});
            for (int i = 0; i < 200; ++i) {
                const auto a = batch.nextAccess();
                const Addr key = a.page * kLinesPerPage + a.line;
                SetAssocArray &l1 = a.isInstr ? l1i : l1d;
                // The borrowed core's L1 harvest region was flushed;
                // approximate with a plain lookup (the L2 effect is
                // what this experiment measures).
                if (!l1.access(key, false).hit)
                    trace.push_back({key, false, false, false});
            }
            trace.push_back({0, false, false, true});
        }
    }
    return trace;
}

/** Replay the trace into an L2 array with the given policy. */
double
replay(const std::vector<TraceEvent> &trace,
       std::unique_ptr<ReplacementPolicy> policy, double candidates)
{
    SetAssocArray l2(kL2, std::move(policy));
    l2.setHarvestWayCount(4); // 50% of 8 ways
    l2.setCandidateFraction(candidates);
    const WayMask harvest = l2.harvestWays();
    const WayMask all = l2.allWays();
    std::uint64_t hits = 0;
    std::uint64_t refs = 0;
    bool in_harvest = false;
    for (const auto &e : trace) {
        if (e.flushHarvest) {
            l2.flushWays(harvest);
            in_harvest = !in_harvest;
            continue;
        }
        const WayMask allowed = in_harvest ? harvest : all;
        const bool hit = l2.access(e.key, e.shared, allowed).hit;
        if (e.primary) {
            ++refs;
            hits += hit ? 1 : 0;
        }
    }
    return refs ? static_cast<double>(hits) /
                      static_cast<double>(refs)
                : 0.0;
}

/** Trace keys only (oracle construction). */
std::vector<Addr>
keysOf(const std::vector<TraceEvent> &trace)
{
    std::vector<Addr> keys;
    for (const auto &e : trace) {
        if (!e.flushHarvest)
            keys.push_back(e.key);
    }
    return keys;
}

/** Belady needs per-access bookkeeping; skip flush markers. */
double
replayBelady(const std::vector<TraceEvent> &trace)
{
    const auto keys = keysOf(trace);
    NextUseOracle oracle(keys);
    SetAssocArray l2(kL2, std::make_unique<BeladyPolicy>(oracle));
    l2.setHarvestWayCount(4);
    const WayMask harvest = l2.harvestWays();
    const WayMask all = l2.allWays();
    std::uint64_t hits = 0;
    std::uint64_t refs = 0;
    bool in_harvest = false;
    for (const auto &e : trace) {
        if (e.flushHarvest) {
            // The ideal bar is flush-free clairvoyant replacement:
            // an upper bound no online, flushed policy can reach.
            in_harvest = !in_harvest;
            continue;
        }
        const WayMask allowed = in_harvest ? harvest : all;
        const bool hit = l2.access(e.key, e.shared, allowed).hit;
        if (e.primary) {
            ++refs;
            hits += hit ? 1 : 0;
        }
    }
    return refs ? static_cast<double>(hits) /
                      static_cast<double>(refs)
                : 0.0;
}

} // namespace

int
main()
{
    using namespace hh::bench;
    BenchScale scale;
    printHeader("Figure 14",
                "L2 hit rate under different replacement policies");

    std::printf("%-10s %10s %10s %12s %10s\n", "service", "LRU",
                "RRIP", "HardHarvest", "Belady");
    double a_lru = 0;
    double a_rrip = 0;
    double a_hh = 0;
    double a_bel = 0;
    const auto services = hh::workload::deathStarBenchServices();

    // One parallel task per service: trace generation + the four
    // replays are independent across services.
    struct Rates
    {
        double lru = 0, rrip = 0, hh = 0, bel = 0;
    };
    const auto rates = hh::cluster::runParallel<Rates>(
        services.size(), [&services, &scale](std::size_t i) {
            const auto trace =
                makeTrace(services[i], scale.seed, 60);
            Rates r;
            r.lru = replay(trace, makePolicy(ReplKind::LRU), 1.0);
            r.rrip = replay(trace, makePolicy(ReplKind::RRIP), 1.0);
            r.hh = replay(trace, makePolicy(ReplKind::HardHarvest),
                          0.75);
            r.bel = replayBelady(trace);
            return r;
        });

    for (std::size_t i = 0; i < services.size(); ++i) {
        const Rates &r = rates[i];
        std::printf("%-10s %9.1f%% %9.1f%% %11.1f%% %9.1f%%\n",
                    services[i].name.c_str(), r.lru * 100,
                    r.rrip * 100, r.hh * 100, r.bel * 100);
        a_lru += r.lru;
        a_rrip += r.rrip;
        a_hh += r.hh;
        a_bel += r.bel;
    }
    const double n = static_cast<double>(services.size());
    std::printf("%-10s %9.1f%% %9.1f%% %11.1f%% %9.1f%%\n", "Avg",
                a_lru / n * 100, a_rrip / n * 100, a_hh / n * 100,
                a_bel / n * 100);
    std::printf("\nHardHarvest vs LRU:  +%.1f%% (paper: +11.3%%)\n",
                (a_hh - a_lru) / n * 100);
    std::printf("HardHarvest vs RRIP: +%.1f%% (paper: +8.2%%)\n",
                (a_hh - a_rrip) / n * 100);
    std::printf("Belady - HardHarvest: %.1f%% (paper: 3.1%%)\n",
                (a_bel - a_hh) / n * 100);
    return 0;
}
