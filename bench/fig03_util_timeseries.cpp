/**
 * @file
 * Figure 3: core utilization of a representative Alibaba
 * microservice VM over 500 seconds (bursty low-utilization shape).
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "workload/alibaba.h"

int
main()
{
    hh::bench::printHeader(
        "Figure 3", "utilization time series of one instance (500 s)");

    hh::workload::AlibabaTrace trace(hh::bench::BenchScale{}.seed);
    const auto series = trace.utilizationSeries(500.0, 5.0);

    std::printf("%-8s %12s  %s\n", "t[s]", "utilization", "bar");
    double mean = 0;
    double peak = 0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        const double u = series[i];
        mean += u;
        peak = std::max(peak, u);
        std::printf("%-8.0f %12.3f  ", static_cast<double>(i) * 5.0, u);
        const int stars = static_cast<int>(u * 50);
        for (int s = 0; s < stars; ++s)
            std::printf("*");
        std::printf("\n");
    }
    mean /= static_cast<double>(series.size());
    std::printf("\nmean %.3f, peak %.3f (paper: mostly low with "
                "bursts toward ~0.8)\n", mean, peak);
    return 0;
}
