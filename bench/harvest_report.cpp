/**
 * @file
 * Harvesting-economics report driver (PR 7).
 *
 * Runs the cluster with the telemetry plane enabled (or resumes a
 * checkpointed run) and turns the per-server ObservationView payloads
 * into the fleet-level TelemetryHub products: an append-only
 * economics JSONL, Chrome counter tracks, and a one-page plain-text
 * report. Every output is byte-identical for any worker count and
 * across checkpoint save/load/resume — the property the telemetry
 * determinism CI job asserts with `cmp`.
 *
 *   harvest_report [--jsonl out.jsonl] [--report out.txt]
 *                  [--counters out.json] [--period-ms f]
 *                  [--workers n] [--checkpoint-every ms]
 *                  [--checkpoint-file path]
 *
 * Scale comes from the usual HH_REQUESTS / HH_SERVERS / HH_SAMPLING /
 * HH_SEED environment knobs.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "cluster/telemetry_hub.h"

namespace {

struct Args
{
    std::string jsonlPath = "harvest_telemetry.jsonl";
    std::string reportPath;   //!< empty: stdout only
    std::string countersPath; //!< empty: not written
    double periodMs = 1.0;
    unsigned workers = 0;
    hh::bench::ObsOptions obs; //!< checkpoint knobs only
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--jsonl out.jsonl] [--report out.txt]"
                 " [--counters out.json] [--period-ms f]"
                 " [--workers n] [--checkpoint-every ms]"
                 " [--checkpoint-file path]\n",
                 argv0);
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jsonl" && i + 1 < argc) {
            a.jsonlPath = argv[++i];
        } else if (arg == "--report" && i + 1 < argc) {
            a.reportPath = argv[++i];
        } else if (arg == "--counters" && i + 1 < argc) {
            a.countersPath = argv[++i];
        } else if (arg == "--period-ms" && i + 1 < argc) {
            a.periodMs = std::strtod(argv[++i], nullptr);
            if (a.periodMs <= 0)
                usage(argv[0]);
        } else if (arg == "--workers" && i + 1 < argc) {
            a.workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--checkpoint-every" && i + 1 < argc) {
            a.obs.checkpointEveryMs = std::strtod(argv[++i], nullptr);
        } else if (arg == "--checkpoint-file" && i + 1 < argc) {
            a.obs.checkpointPath = argv[++i];
        } else {
            usage(argv[0]);
        }
    }
    return a;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);
    const hh::bench::BenchScale scale;

    hh::cluster::SystemConfig cfg =
        hh::cluster::makeSystem(hh::cluster::SystemKind::HardHarvestBlock);
    hh::bench::applyScale(cfg, scale);
    cfg.telemetryEnabled = true;
    cfg.telemetryPeriod = hh::sim::msToCycles(args.periodMs);

    hh::cluster::ClusterResults res = hh::bench::runClusterResumable(
        cfg, scale.servers, scale.seed, args.workers, args.obs);

    hh::cluster::TelemetryHub hub(cfg);
    for (auto &t : res.serverTelemetry)
        hub.addServer(std::move(t));

    int rc = 0;
    if (!hh::cluster::writeTextFile(args.jsonlPath, hub.jsonl())) {
        hh::sim::warn("cannot write ", args.jsonlPath);
        rc = 1;
    } else {
        std::printf("telemetry: %s (%zu epochs)\n",
                    args.jsonlPath.c_str(), hub.timeline().size());
    }
    if (!args.countersPath.empty()) {
        if (!hh::cluster::writeTextFile(args.countersPath,
                                        hub.counterTrackJson())) {
            hh::sim::warn("cannot write ", args.countersPath);
            rc = 1;
        } else {
            std::printf("counters: %s\n", args.countersPath.c_str());
        }
    }
    const std::string report = hub.report();
    if (!args.reportPath.empty()) {
        if (!hh::cluster::writeTextFile(args.reportPath, report)) {
            hh::sim::warn("cannot write ", args.reportPath);
            rc = 1;
        } else {
            std::printf("report: %s\n", args.reportPath.c_str());
        }
    }
    std::fputs(report.c_str(), stdout);
    return rc;
}
