/**
 * @file
 * Service-graph fleet bench: one multi-tier RPC-DAG fleet run
 * (src/svc/) with the fleet harvesting-economics row, the per-tier
 * latency breakdown, and the bounded-footprint diagnostics, plus two
 * CI-facing modes:
 *
 *   --serialized <out>   Write FleetResults::serialized() to <out>;
 *                        CI `cmp`s the files from different worker
 *                        counts to enforce bit-identity.
 *   --resume-check       Re-run the same fleet, checkpointing at half
 *                        the simulated span and resuming, and require
 *                        the resumed results byte-identical to the
 *                        straight run (exit 1 otherwise).
 *
 * Not a paper figure: HardHarvest evaluates single-server
 * microservice mixes; this bench is repo-specific evidence that core
 * harvesting holds up when requests fan out across servers.
 *
 * The graph is layered (`makeLayeredGraphSpec`): --depth synchronous
 * tiers over --servers servers with --fanout children per call, or an
 * explicit topology via --graph <spec-file>. HH_REQUESTS scales the
 * per-VM arrival budget as in every bench.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "cluster/telemetry_hub.h"
#include "service_graph.h"
#include "svc/fleet.h"

namespace {

using namespace hh::bench;

struct GraphArgs
{
    unsigned depth = 3;
    unsigned fanout = 2;
    unsigned servers = 16;
    std::string policy = "static";
    unsigned workers = 0;
    std::string graphPath;
    std::string serializedPath;
    std::string checkpointPath = "graph_checkpoint.hhcp";
    bool resumeCheck = false;
};

GraphArgs
parseGraphArgs(int argc, char **argv)
{
    GraphArgs a;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--depth" && i + 1 < argc) {
            a.depth = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--fanout" && i + 1 < argc) {
            a.fanout = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--servers" && i + 1 < argc) {
            a.servers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--policy" && i + 1 < argc) {
            a.policy = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            a.workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--graph" && i + 1 < argc) {
            a.graphPath = argv[++i];
        } else if (arg == "--serialized" && i + 1 < argc) {
            a.serializedPath = argv[++i];
        } else if (arg == "--checkpoint-file" && i + 1 < argc) {
            a.checkpointPath = argv[++i];
        } else if (arg == "--resume-check") {
            a.resumeCheck = true;
        } else {
            hh::sim::fatal(
                "usage: ", argv[0],
                " [--depth N] [--fanout N] [--servers N]"
                " [--policy name] [--workers N] [--graph spec-file]"
                " [--serialized out] [--resume-check]"
                " [--checkpoint-file path]");
        }
    }
    return a;
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        hh::sim::fatal("cannot read ", path);
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

} // namespace

int
main(int argc, char **argv)
{
    const GraphArgs args = parseGraphArgs(argc, argv);
    const BenchScale scale(/*def_servers=*/2, /*def_requests=*/48);

    hh::svc::ServiceGraphSpec spec;
    if (!args.graphPath.empty()) {
        std::string err;
        if (!hh::svc::parseGraphSpec(readFile(args.graphPath), &spec,
                                     &err))
            hh::sim::fatal(args.graphPath, ": ", err);
    } else {
        spec = hh::svc::makeLayeredGraphSpec(args.depth, args.fanout,
                                             args.servers);
    }

    printHeader("fig_service_graph",
                "multi-tier RPC DAGs over the fleet fabric");
    std::printf("graph=%s servers=%u depth=%u policy=%s "
                "requests/VM=%u seed=%llu\n",
                spec.name.c_str(), spec.servers, spec.depth(),
                args.policy.c_str(), scale.requests,
                static_cast<unsigned long long>(scale.seed));

    hh::cluster::SystemConfig cfg = graphConfig(scale);
    cfg.policy = args.policy;
    const hh::svc::FleetResults res =
        hh::svc::runFleet(spec, cfg, scale.seed, args.workers);

    std::printf("\n");
    printGraphEconomics({{args.policy, spec.depth(), res}});
    std::printf("\nper-tier breakdown:\n");
    std::printf("%-6s %-10s %12s %10s %10s %10s\n", "tier",
                "service", "nodes", "sheds", "p50[us]", "p99[us]");
    for (std::size_t t = 0; t < res.tiers.size(); ++t) {
        const auto &tr = res.tiers[t];
        std::printf("%-6zu %-10s %12llu %10llu %10.1f %10.1f\n", t,
                    tr.service.c_str(),
                    static_cast<unsigned long long>(tr.nodes),
                    static_cast<unsigned long long>(tr.sheds),
                    tr.p50Us, tr.p99Us);
    }
    std::printf("\nroots done=%llu shed=%llu  e2e count=%llu "
                "p50=%.1fus p99=%.1fus\n",
                static_cast<unsigned long long>(res.rootsDone),
                static_cast<unsigned long long>(res.rootsShed),
                static_cast<unsigned long long>(res.e2eCount),
                res.e2eP50Us, res.e2eP99Us);
    std::printf("footprint: windows=%llu peakLiveNodes/server=%llu "
                "engineBytes/server=%llu\n",
                static_cast<unsigned long long>(res.windows),
                static_cast<unsigned long long>(res.maxPeakLiveNodes),
                static_cast<unsigned long long>(
                    res.maxFootprintBytes));

    if (!args.serializedPath.empty()) {
        if (!hh::cluster::writeTextFile(args.serializedPath,
                                        res.serialized()))
            hh::sim::fatal("cannot write ", args.serializedPath);
        std::printf("serialized: %s\n", args.serializedPath.c_str());
    }

    int rc = 0;
    if (args.resumeCheck) {
        // Checkpoint a fresh fleet mid-run (half the simulated span),
        // resume it, and require byte-identical results.
        const auto mid =
            hh::sim::msToCycles(res.elapsedSec * 1000.0 / 2.0);
        std::string err;
        if (!hh::svc::checkpointFleetAt(spec, cfg, scale.seed,
                                        args.workers, mid,
                                        args.checkpointPath, &err))
            hh::sim::fatal("checkpoint failed: ", err);
        const auto resumed = hh::svc::resumeFleet(
            args.checkpointPath, spec, cfg, scale.seed, args.workers,
            &err);
        if (!resumed)
            hh::sim::fatal("resume failed: ", err);
        const bool ok = resumed->serialized() == res.serialized();
        std::printf("graph-check checkpoint-resume: %s\n",
                    ok ? "PASS" : "FAIL");
        if (!ok)
            rc = 1;
    }
    return rc;
}
