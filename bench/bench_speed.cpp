/**
 * @file
 * Simulator speed tracker: measures the wall-clock of the parallel
 * cluster engine against the sequential baseline and the event-queue
 * hot path against the seed implementation, then writes the numbers
 * as machine-readable JSON so the perf trajectory is tracked across
 * PRs.
 *
 * Usage:  bench_speed [output.json]
 *   default output: BENCH_sim_speed.json in the current directory.
 * Honors HH_REQUESTS / HH_SERVERS / HH_SAMPLING / HH_SEED /
 * HH_THREADS; the cluster run uses all 8 batch apps unless
 * HH_SERVERS says otherwise.
 *
 * Also measures the wall-clock overhead of the observability layer
 * (request-span tracing + metric sampling, both enabled) and of the
 * invariant auditor (every cross-component check sweeping at the
 * default period) against the everything-off parallel run. Set
 * HH_OVERHEAD_GATE=<percent> to make the binary fail when either
 * measured overhead exceeds the gate (used by CI; off by default
 * because single-core containers are noisy).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "legacy_event_queue.h"
#include "sim/event_queue.h"
#include "sim/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Ops/sec of the schedule/cancel/pop mix over @p rounds rounds. */
template <typename Queue>
double
measureQueueMix(std::uint64_t rounds)
{
    std::uint64_t sink = 0;
    hh::sim::Rng rng(7, 0xE0);
    Queue q;
    hh::sim::Cycles now = 0;
    std::vector<typename Queue::EventId> pending;
    for (int i = 0; i < 64; ++i)
        pending.push_back(
            q.schedule(now + 1 + (i % 13), [&sink] { ++sink; }));
    const auto start = Clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r)
        hh::bench::eventQueueMixRound(q, rng, now, pending, sink);
    const double sec = secondsSince(start);
    return sec > 0 ? static_cast<double>(rounds) / sec : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_sim_speed.json";

    BenchScale scale;
    scale.servers = envUnsigned("HH_SERVERS", 8);
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    applyScale(cfg, scale);

    const unsigned workers =
        resolveWorkers(0, scale.servers);

    printHeader("bench_speed", "simulator wall-clock tracker");
    std::printf("servers=%u requests/VM=%u workers=%u\n",
                scale.servers, scale.requests, workers);

    // Sequential baseline: thread pool pinned to one worker (the
    // runParallel fast path runs tasks inline on the calling thread).
    std::printf("sequential cluster run...\n");
    const auto t_seq = Clock::now();
    const ClusterResults seq =
        runCluster(cfg, scale.servers, scale.seed, 1);
    const double seq_sec = secondsSince(t_seq);

    std::printf("parallel cluster run (%u workers)...\n", workers);
    const auto t_par = Clock::now();
    const ClusterResults par =
        runCluster(cfg, scale.servers, scale.seed, workers);
    const double par_sec = secondsSince(t_par);

    const bool identical = seq.serialized() == par.serialized();
    const double speedup = par_sec > 0 ? seq_sec / par_sec : 0.0;

    // Observability overhead: identical run with tracing + metric
    // sampling enabled. The span/timeline hot paths branch on a null
    // tracer pointer when disabled, so par_sec above is the true
    // zero-cost baseline.
    std::printf("parallel cluster run, tracing on...\n");
    SystemConfig traced = cfg;
    traced.traceEnabled = true;
    traced.metricsEnabled = true;
    const auto t_trc = Clock::now();
    const ClusterResults trc =
        runCluster(traced, scale.servers, scale.seed, workers);
    const double trc_sec = secondsSince(t_trc);
    const double trace_overhead_pct =
        par_sec > 0 ? 100.0 * (trc_sec / par_sec - 1.0) : 0.0;
    std::uint64_t trace_events = 0;
    for (const auto &t : trc.traces)
        trace_events += t.events.size() + t.dropped;

    // Auditor overhead: same run with every cross-component invariant
    // sweeping at the default period. When disabled (par_sec above)
    // no Auditor exists and the simulator's audit hook is null, so
    // the baseline is the true zero-cost path.
    std::printf("parallel cluster run, auditing on...\n");
    SystemConfig audited = cfg;
    audited.auditEnabled = true;
    const auto t_aud = Clock::now();
    const ClusterResults aud =
        runCluster(audited, scale.servers, scale.seed, workers);
    const double aud_sec = secondsSince(t_aud);
    const double audit_overhead_pct =
        par_sec > 0 ? 100.0 * (aud_sec / par_sec - 1.0) : 0.0;

    std::printf("event-queue mix (seed baseline vs slab)...\n");
    const std::uint64_t rounds = 4'000'000;
    const double legacy_ops =
        measureQueueMix<LegacyEventQueue>(rounds);
    const double slab_ops =
        measureQueueMix<hh::sim::EventQueue>(rounds);
    const double queue_speedup =
        legacy_ops > 0 ? slab_ops / legacy_ops : 0.0;

    std::printf("\ncluster:  seq %.2fs  par %.2fs  speedup %.2fx  "
                "bit-identical %s\n",
                seq_sec, par_sec, speedup,
                identical ? "yes" : "NO");
    std::printf("eventq:   legacy %.2f Mops/s  slab %.2f Mops/s  "
                "speedup %.2fx\n",
                legacy_ops / 1e6, slab_ops / 1e6, queue_speedup);
    std::printf("tracing:  off %.2fs  on %.2fs  overhead %+.1f%%  "
                "(%llu events)\n",
                par_sec, trc_sec, trace_overhead_pct,
                static_cast<unsigned long long>(trace_events));
    std::printf("auditing: off %.2fs  on %.2fs  overhead %+.1f%%  "
                "(%llu sweeps, %llu violations)\n",
                par_sec, aud_sec, audit_overhead_pct,
                static_cast<unsigned long long>(aud.auditsRun),
                static_cast<unsigned long long>(aud.auditViolations));

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"host\": {\n");
    std::fprintf(f, "    \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "    \"pool_workers\": %u\n", workers);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"scale\": {\n");
    std::fprintf(f, "    \"servers\": %u,\n", scale.servers);
    std::fprintf(f, "    \"requests_per_vm\": %u,\n", scale.requests);
    std::fprintf(f, "    \"access_sampling\": %u,\n", scale.sampling);
    std::fprintf(f, "    \"seed\": %llu\n",
                 static_cast<unsigned long long>(scale.seed));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"cluster\": {\n");
    std::fprintf(f, "    \"sequential_sec\": %.4f,\n", seq_sec);
    std::fprintf(f, "    \"parallel_sec\": %.4f,\n", par_sec);
    std::fprintf(f, "    \"speedup\": %.3f,\n", speedup);
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"event_queue\": {\n");
    std::fprintf(f, "    \"mix_rounds\": %llu,\n",
                 static_cast<unsigned long long>(rounds));
    std::fprintf(f, "    \"legacy_ops_per_sec\": %.0f,\n", legacy_ops);
    std::fprintf(f, "    \"slab_ops_per_sec\": %.0f,\n", slab_ops);
    std::fprintf(f, "    \"speedup\": %.3f\n", queue_speedup);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"tracing\": {\n");
    std::fprintf(f, "    \"baseline_sec\": %.4f,\n", par_sec);
    std::fprintf(f, "    \"traced_sec\": %.4f,\n", trc_sec);
    std::fprintf(f, "    \"overhead_pct\": %.2f,\n",
                 trace_overhead_pct);
    std::fprintf(f, "    \"events\": %llu\n",
                 static_cast<unsigned long long>(trace_events));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"auditing\": {\n");
    std::fprintf(f, "    \"baseline_sec\": %.4f,\n", par_sec);
    std::fprintf(f, "    \"audited_sec\": %.4f,\n", aud_sec);
    std::fprintf(f, "    \"overhead_pct\": %.2f,\n",
                 audit_overhead_pct);
    std::fprintf(f, "    \"sweeps\": %llu,\n",
                 static_cast<unsigned long long>(aud.auditsRun));
    std::fprintf(f, "    \"violations\": %llu\n",
                 static_cast<unsigned long long>(aud.auditViolations));
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    if (const char *gate = std::getenv("HH_OVERHEAD_GATE")) {
        const double limit = std::strtod(gate, nullptr);
        if (limit > 0 && trace_overhead_pct > limit) {
            std::fprintf(stderr,
                         "tracing overhead %.1f%% exceeds gate "
                         "%.1f%%\n",
                         trace_overhead_pct, limit);
            return 1;
        }
        if (limit > 0 && audit_overhead_pct > limit) {
            std::fprintf(stderr,
                         "auditing overhead %.1f%% exceeds gate "
                         "%.1f%%\n",
                         audit_overhead_pct, limit);
            return 1;
        }
    }
    if (aud.auditViolations != 0) {
        std::fprintf(stderr,
                     "audited bench run reported %llu invariant "
                     "violations\n",
                     static_cast<unsigned long long>(
                         aud.auditViolations));
        return 1;
    }
    return identical ? 0 : 1;
}
