/**
 * @file
 * Simulator speed tracker: measures the wall-clock of the parallel
 * cluster engine against the sequential baseline and the event-queue
 * hot path against the seed implementation, then writes the numbers
 * as machine-readable JSON so the perf trajectory is tracked across
 * PRs.
 *
 * Usage:  bench_speed [output.json]
 *   default output: BENCH_sim_speed.json in the current directory.
 * Honors HH_REQUESTS / HH_SERVERS / HH_SAMPLING / HH_SEED /
 * HH_THREADS; the cluster run uses all 8 batch apps unless
 * HH_SERVERS says otherwise.
 *
 * Also measures the wall-clock overhead of the observability layer
 * (request-span tracing + metric sampling, both enabled), of the
 * invariant auditor (every cross-component check sweeping at the
 * default period), of the harvest telemetry plane (per-epoch
 * ObservationView rows), of an epoch-ticking harvest policy
 * (hysteresis), and of the cache-lease plane armed but idle
 * (src/lease/, zero-way grant budget — must stay bit-identical to
 * the disabled baseline) against the everything-off parallel run. Set
 * HH_OVERHEAD_GATE=<percent> to make the binary fail when either
 * measured overhead exceeds the gate (used by CI; off by default
 * because single-core containers are noisy).
 *
 * The "graph" section runs a service-graph fleet (src/svc/, 64
 * servers x 3 tiers by default; HH_GRAPH_SERVERS / HH_GRAPH_REQUESTS
 * rescale it) and records its wall-clock plus the per-server resident
 * footprint: peak RSS growth (VmHWM) divided by the fleet size, and
 * the RPC engine's own accounting. The footprint is judged against a
 * fixed 128 MiB/server budget under the same HH_OVERHEAD_GATE knob —
 * the bounded-state contract for 64-128 server fleets.
 */

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exp/codec.h"
#include "exp/scheduler.h"
#include "legacy_event_queue.h"
#include "sim/event_queue.h"
#include "sim/event_queue_heap.h"
#include "sim/prof.h"
#include "sim/thread_pool.h"
#include "snapshot/archive.h"
#include "svc/fleet.h"
#include "workload/batch.h"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Ops/sec of one schedule/cancel/pop mix over @p rounds rounds. */
template <typename Queue>
double
measureQueueMix(std::uint64_t rounds,
                const hh::bench::QueueMixPreset &p)
{
    std::uint64_t sink = 0;
    hh::sim::Rng rng(7, 0xE0);
    Queue q;
    hh::sim::Cycles now = 0;
    std::vector<typename Queue::EventId> pending;
    for (int i = 0; i < 64; ++i)
        pending.push_back(
            q.schedule(now + 1 + (i % 13), [&sink] { ++sink; }));
    const auto start = Clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r)
        hh::bench::eventQueueMixRound(q, rng, now, pending, sink,
                                      p.horizon, p.cancelProb);
    const double sec = secondsSince(start);
    return sec > 0 ? static_cast<double>(rounds) / sec : 0.0;
}

/** One queue variant's ops/sec across the three workload presets. */
template <typename Queue>
std::array<double, 3>
measureQueueVariant(std::uint64_t rounds)
{
    std::array<double, 3> ops{};
    for (std::size_t i = 0; i < 3; ++i)
        ops[i] = measureQueueMix<Queue>(
            rounds, hh::bench::kQueueMixPresets[i]);
    return ops;
}

/** A /proc/self/status field in kB (0 when unreadable, e.g. !linux). */
std::uint64_t
procStatusKb(const char *key)
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    char line[256];
    std::uint64_t kb = 0;
    const std::size_t len = std::strlen(key);
    while (std::fgets(line, sizeof line, f)) {
        if (std::strncmp(line, key, len) == 0 && line[len] == ':') {
            kb = std::strtoull(line + len + 1, nullptr, 10);
            break;
        }
    }
    std::fclose(f);
    return kb;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_sim_speed.json";

    BenchScale scale(/*def_servers=*/8);
    SystemConfig cfg = makeSystem(SystemKind::HardHarvestBlock);
    applyScale(cfg, scale);

    const unsigned workers =
        resolveWorkers(0, scale.servers);

    printHeader("bench_speed", "simulator wall-clock tracker");
    std::printf("servers=%u requests/VM=%u workers=%u\n",
                scale.servers, scale.requests, workers);

    // Sequential baseline: thread pool pinned to one worker (the
    // runParallel fast path runs tasks inline on the calling thread).
    std::printf("sequential cluster run...\n");
    const auto t_seq = Clock::now();
    const ClusterResults seq =
        runCluster(cfg, scale.servers, scale.seed, 1);
    const double seq_sec = secondsSince(t_seq);

    std::printf("parallel cluster run (%u workers)...\n", workers);
    const auto t_par = Clock::now();
    const ClusterResults par =
        runCluster(cfg, scale.servers, scale.seed, workers);
    const double par_sec = secondsSince(t_par);

    const bool identical = seq.serialized() == par.serialized();
    const double speedup = par_sec > 0 ? seq_sec / par_sec : 0.0;

    // Observability overhead: identical run with tracing + metric
    // sampling enabled. The span/timeline hot paths branch on a null
    // tracer pointer when disabled, so par_sec above is the true
    // zero-cost baseline.
    std::printf("parallel cluster run, tracing on...\n");
    SystemConfig traced = cfg;
    traced.traceEnabled = true;
    traced.metricsEnabled = true;
    const auto t_trc = Clock::now();
    const ClusterResults trc =
        runCluster(traced, scale.servers, scale.seed, workers);
    const double trc_sec = secondsSince(t_trc);
    const double trace_overhead_pct =
        par_sec > 0 ? 100.0 * (trc_sec / par_sec - 1.0) : 0.0;
    std::uint64_t trace_events = 0;
    for (const auto &t : trc.traces)
        trace_events += t.events.size() + t.dropped;

    // Auditor overhead: same run with every cross-component invariant
    // sweeping at the default period. When disabled (par_sec above)
    // no Auditor exists and the simulator's audit hook is null, so
    // the baseline is the true zero-cost path.
    std::printf("parallel cluster run, auditing on...\n");
    SystemConfig audited = cfg;
    audited.auditEnabled = true;
    const auto t_aud = Clock::now();
    const ClusterResults aud =
        runCluster(audited, scale.servers, scale.seed, workers);
    const double aud_sec = secondsSince(t_aud);
    const double audit_overhead_pct =
        par_sec > 0 ? 100.0 * (aud_sec / par_sec - 1.0) : 0.0;

    // Telemetry overhead: same run with the per-epoch ObservationView
    // materializing feature rows. When disabled (par_sec above) no
    // view exists and no epoch tick is ever scheduled, so the
    // baseline is again the true zero-cost path.
    std::printf("parallel cluster run, telemetry on...\n");
    SystemConfig telemetered = cfg;
    telemetered.telemetryEnabled = true;
    const auto t_tel = Clock::now();
    const ClusterResults tel =
        runCluster(telemetered, scale.servers, scale.seed, workers);
    const double tel_sec = secondsSince(t_tel);
    const double telemetry_overhead_pct =
        par_sec > 0 ? 100.0 * (tel_sec / par_sec - 1.0) : 0.0;
    std::uint64_t telemetry_rows = 0;
    for (const auto &t : tel.serverTelemetry)
        telemetry_rows += t.rows.size();

    // Policy-decision overhead: same run with an epoch-ticking
    // harvest policy (hysteresis — per-epoch feature rows plus EWMA
    // updates and decision application). The default "static" policy
    // never schedules an epoch tick and reads frozen decisions, so
    // par_sec above is again the zero-cost baseline. The thresholds
    // are neutralized (strict comparisons never leave the sticky
    // band) so decisions stay at the static seed and the run
    // simulates identical work — this measures the decision *plane*
    // (tick + observe + decide), not the cost of lending differently;
    // that behavioural delta is the frontier's job to report.
    std::printf("parallel cluster run, hysteresis policy on...\n");
    SystemConfig policed = cfg;
    policed.policy = "hysteresis";
    policed.policyLendUtil = 0.0;
    policed.policyHoldUtil = 1.0;
    const auto t_pol = Clock::now();
    const ClusterResults pol =
        runCluster(policed, scale.servers, scale.seed, workers);
    const double pol_sec = secondsSince(t_pol);
    const double policy_overhead_pct =
        par_sec > 0 ? 100.0 * (pol_sec / par_sec - 1.0) : 0.0;
    (void)pol;

    // Cache-lease plane overhead: same run with the CacheLeaseManager
    // constructed and its periodic tick armed, but a zero-way grant
    // budget so no lease is ever granted — the enabled-but-idle cost
    // of the tick, the overflow-probe rebinds and the per-access
    // lease branch. With no grants the simulated work is unchanged,
    // so the runs must stay bit-identical; when disabled (par_sec
    // above) no manager exists and no tick is scheduled, so the
    // baseline is again the true zero-cost path. Like every wall-
    // clock number here, single-core hosts make the absolute times
    // noisy (host.single_core_host in the JSON flags that).
    std::printf("parallel cluster run, cache lease idle...\n");
    SystemConfig leased = cfg;
    leased.cacheLendEnabled = true;
    leased.cacheLendL3Ways = 0;
    leased.cacheLendL2WayFraction = 0.0;
    const auto t_lease = Clock::now();
    const ClusterResults lease =
        runCluster(leased, scale.servers, scale.seed, workers);
    const double lease_sec = secondsSince(t_lease);
    const double lease_overhead_pct =
        par_sec > 0 ? 100.0 * (lease_sec / par_sec - 1.0) : 0.0;
    const bool lease_identical =
        lease.serialized() == par.serialized();

    // Snapshot subsystem: cost of one full-state save and load at the
    // server level, then the cluster-level warm-start path — snapshot
    // the whole cluster after a warm-up prefix, resume it, and compare
    // the resumed wall-clock against re-running the prefix (the win a
    // checkpoint-sharing sweep gets per fork).
    std::printf("snapshot save/load + warm-start resume...\n");
    const hh::sim::Cycles t_warm = hh::sim::msToCycles(
        envDouble("HH_WARMUP_MS", 2.0));
    double save_sec = 0;
    double load_sec = 0;
    std::size_t state_bytes = 0;
    {
        const auto apps = hh::workload::batchApplications();
        ServerSim warm(cfg, apps.front().name, scale.seed);
        warm.startRun();
        warm.advanceRun(t_warm);
        const auto t_sv = Clock::now();
        auto ar = hh::snap::Archive::forSave();
        warm.saveState(ar);
        save_sec = secondsSince(t_sv);
        const std::vector<std::uint8_t> blob = ar.take();
        state_bytes = blob.size();
        ServerSim cold(cfg, apps.front().name, scale.seed);
        const auto t_ld = Clock::now();
        auto lr = hh::snap::Archive::forLoad(blob);
        cold.loadState(lr);
        load_sec = secondsSince(t_ld);
        if (!lr.ok())
            hh::sim::fatal("snapshot bench load failed: ", lr.error());
    }
    const std::string ckpt_path = out_path + ".hhcp";
    std::string ckpt_err;
    const auto t_ck = Clock::now();
    const bool ckpt_ok = checkpointClusterAt(
        cfg, scale.servers, scale.seed, workers, t_warm, ckpt_path,
        &ckpt_err);
    const double ckpt_sec = secondsSince(t_ck);
    if (!ckpt_ok)
        hh::sim::fatal("cluster checkpoint failed: ", ckpt_err);
    const auto t_rs = Clock::now();
    const auto resumed =
        resumeCluster(ckpt_path, cfg, workers, &ckpt_err);
    const double resume_sec = secondsSince(t_rs);
    if (!resumed)
        hh::sim::fatal("cluster resume failed: ", ckpt_err);
    std::remove(ckpt_path.c_str());
    const bool snap_identical =
        resumed->serialized() == par.serialized();
    const double warm_speedup =
        resume_sec > 0 ? par_sec / resume_sec : 0.0;
    const double snap_overhead_pct =
        par_sec > 0 ? 100.0 * (save_sec + load_sec) / par_sec : 0.0;

    // Experiment-engine warm starts: a 3-point arrival-budget sweep
    // {R/2, 3R/4, R} run cold (every point from t=0) vs through the
    // JobScheduler's config-prefix warm start (donor R simulates once;
    // the smaller budgets resume from its snapshot). Unlike the
    // cluster speedup, the win here survives a single-core host — warm
    // starts skip simulated work, they don't add parallelism.
    std::printf("experiment warm-start sweep (cold vs warm)...\n");
    const std::vector<unsigned> budgets = {
        std::max(scale.requests / 2, 1u),
        std::max(3 * scale.requests / 4, 2u), scale.requests};
    const std::string sweep_app =
        hh::workload::batchApplications().front().name;
    const auto submitSweep = [&](hh::exp::JobScheduler &s) {
        std::vector<hh::exp::JobScheduler::Handle> hs;
        for (const unsigned b : budgets) {
            SystemConfig c = cfg;
            c.requestsPerVm = b;
            // The shareable prefix ends when the *fastest* primary VM
            // reaches the smallest member's warmup boundary
            // (bit-identity: samples past it must be recorded by the
            // member, not the donor). The default 10% warmup leaves
            // nothing worth sharing, and the heterogeneous 8-service
            // mix caps the prefix at the fastest service's rate — so
            // the sweep uses a steady-state warmup share and a
            // uniform single-primary config, the regime prefix
            // sharing is built for.
            c.warmupFraction = 0.5;
            c.primaryVms = 1;
            hs.push_back(s.addServer(c, sweep_app, scale.seed));
        }
        return hs;
    };
    hh::exp::JobScheduler::Options cold_opts;
    cold_opts.warmStart = false;
    hh::exp::JobScheduler cold_sched(cold_opts);
    const auto cold_handles = submitSweep(cold_sched);
    const auto t_cold = Clock::now();
    cold_sched.run();
    const double exp_cold_sec = secondsSince(t_cold);

    hh::exp::JobScheduler warm_sched;
    const auto warm_handles = submitSweep(warm_sched);
    const auto t_wstart = Clock::now();
    warm_sched.run();
    const double exp_warm_sec = secondsSince(t_wstart);

    bool exp_identical = true;
    for (std::size_t i = 0; i < budgets.size(); ++i) {
        exp_identical =
            exp_identical &&
            hh::exp::encodeServerResults(
                cold_sched.serverResult(cold_handles[i])) ==
                hh::exp::encodeServerResults(
                    warm_sched.serverResult(warm_handles[i]));
    }
    const double exp_speedup =
        exp_warm_sec > 0 ? exp_cold_sec / exp_warm_sec : 0.0;
    const auto &warm_stats = warm_sched.stats();

    // Service-graph fleet footprint: a 64-server three-tier RPC-DAG
    // fleet at a reduced arrival budget. The interesting number is
    // resident state per server — the fleet must stay bounded at
    // 64-128 servers — measured as peak-RSS growth over the resident
    // set just before the fleet existed, divided by the fleet size.
    const unsigned graph_servers = envUnsigned("HH_GRAPH_SERVERS", 64);
    const unsigned graph_requests = envUnsigned("HH_GRAPH_REQUESTS", 8);
    std::printf("graph fleet run (%u servers, 3 tiers, %u req/VM)"
                "...\n",
                graph_servers, graph_requests);
    const hh::svc::ServiceGraphSpec gspec =
        hh::svc::makeLayeredGraphSpec(/*depth=*/3, /*fanout=*/2,
                                      graph_servers);
    SystemConfig gcfg = cfg;
    gcfg.requestsPerVm = graph_requests;
    const std::uint64_t rss_before_kb = procStatusKb("VmRSS");
    const auto t_gr = Clock::now();
    const hh::svc::FleetResults gres =
        hh::svc::runFleet(gspec, gcfg, scale.seed, workers);
    const double graph_sec = secondsSince(t_gr);
    const std::uint64_t hwm_after_kb = procStatusKb("VmHWM");
    const double graph_rss_per_server_kb =
        (hwm_after_kb > rss_before_kb && graph_servers > 0)
            ? static_cast<double>(hwm_after_kb - rss_before_kb) /
                  graph_servers
            : 0.0;
    // Judged as "overhead" against a fixed 128 MiB/server budget so
    // the one HH_OVERHEAD_GATE knob covers it: positive means the
    // budget is exceeded.
    constexpr double kGraphRssBudgetKb = 128.0 * 1024.0;
    const double graph_rss_overhead_pct =
        graph_rss_per_server_kb > 0
            ? 100.0 * (graph_rss_per_server_kb / kGraphRssBudgetKb -
                       1.0)
            : -100.0;

    std::printf("event-queue shootout (legacy / heap / wheel x "
                "near / far / cancel)...\n");
    const std::uint64_t rounds = 4'000'000;
    const auto legacy_ops = measureQueueVariant<LegacyEventQueue>(rounds);
    const auto heap_ops =
        measureQueueVariant<hh::sim::HeapEventQueue>(rounds);
    const auto wheel_ops =
        measureQueueVariant<hh::sim::EventQueue>(rounds);
    // Headline speedup stays the near-future (server-like) mix of
    // the production queue vs the seed implementation.
    const double queue_speedup =
        legacy_ops[0] > 0 ? wheel_ops[0] / legacy_ops[0] : 0.0;

    // Profile pass: re-run a reduced sequential slice with the
    // scoped cycle counters on, then report where kernel time goes.
    // Separate from the timed runs above so the (small) rdtsc +
    // atomic-add overhead never pollutes the tracked numbers.
    std::printf("profile pass (scoped cycle counters on)...\n");
    hh::sim::prof::reset();
    hh::sim::prof::setEnabled(true);
    const auto t_prof = Clock::now();
    SystemConfig prof_cfg = cfg;
    prof_cfg.requestsPerVm = std::max(scale.requests / 4, 10u);
    const ClusterResults prof_res =
        runCluster(prof_cfg, 1, scale.seed, 1);
    const double prof_sec = secondsSince(t_prof);
    hh::sim::prof::setEnabled(false);
    (void)prof_res;
    const auto prof_sites = hh::sim::prof::snapshot();

    std::printf("\ncluster:  seq %.2fs  par %.2fs  speedup %.2fx  "
                "bit-identical %s\n",
                seq_sec, par_sec, speedup,
                identical ? "yes" : "NO");
    for (std::size_t i = 0; i < 3; ++i) {
        std::printf("eventq/%-6s legacy %6.2f  heap %6.2f  wheel "
                    "%6.2f Mops/s  (wheel %.2fx legacy)\n",
                    hh::bench::kQueueMixPresets[i].name,
                    legacy_ops[i] / 1e6, heap_ops[i] / 1e6,
                    wheel_ops[i] / 1e6,
                    legacy_ops[i] > 0 ? wheel_ops[i] / legacy_ops[i]
                                      : 0.0);
    }
    std::printf("profile:  %.2fs instrumented slice, top sites:\n",
                prof_sec);
    for (std::size_t i = 0; i < prof_sites.size() && i < 5; ++i) {
        const auto &s = prof_sites[i];
        std::printf("  %-28s %12.0f Mcycles  %10llu hits\n",
                    s.name.c_str(),
                    static_cast<double>(s.cycles) / 1e6,
                    static_cast<unsigned long long>(s.hits));
    }
    std::printf("tracing:  off %.2fs  on %.2fs  overhead %+.1f%%  "
                "(%llu events)\n",
                par_sec, trc_sec, trace_overhead_pct,
                static_cast<unsigned long long>(trace_events));
    std::printf("auditing: off %.2fs  on %.2fs  overhead %+.1f%%  "
                "(%llu sweeps, %llu violations)\n",
                par_sec, aud_sec, audit_overhead_pct,
                static_cast<unsigned long long>(aud.auditsRun),
                static_cast<unsigned long long>(aud.auditViolations));
    std::printf("telemetry: off %.2fs  on %.2fs  overhead %+.1f%%  "
                "(%llu epoch rows)\n",
                par_sec, tel_sec, telemetry_overhead_pct,
                static_cast<unsigned long long>(telemetry_rows));
    std::printf("policy:   off %.2fs  on %.2fs  overhead %+.1f%%  "
                "(hysteresis)\n",
                par_sec, pol_sec, policy_overhead_pct);
    std::printf("cache-lease: off %.2fs  idle %.2fs  overhead "
                "%+.1f%%  (%llu grants)  bit-identical %s\n",
                par_sec, lease_sec, lease_overhead_pct,
                static_cast<unsigned long long>(lease.leaseGrants),
                lease_identical ? "yes" : "NO");
    std::printf("snapshot: save %.1fms  load %.1fms  (%zu KiB)  "
                "warm-start %.2fs vs full %.2fs  speedup %.2fx  "
                "bit-identical %s\n",
                save_sec * 1e3, load_sec * 1e3, state_bytes / 1024,
                resume_sec, par_sec, warm_speedup,
                snap_identical ? "yes" : "NO");
    std::printf("experiment: budget sweep cold %.2fs  warm %.2fs  "
                "speedup %.2fx  (%zu warm-started, %zu groups)  "
                "bit-identical %s\n",
                exp_cold_sec, exp_warm_sec, exp_speedup,
                warm_stats.warmStarted, warm_stats.prefixGroups,
                exp_identical ? "yes" : "NO");
    std::printf("graph:    %u servers x %u tiers in %.2fs  "
                "%.1f MiB/server resident (budget %.0f)  "
                "peakLiveNodes/server %llu  engine %llu B/server\n",
                gres.servers, gres.depth, graph_sec,
                graph_rss_per_server_kb / 1024.0,
                kGraphRssBudgetKb / 1024.0,
                static_cast<unsigned long long>(
                    gres.maxPeakLiveNodes),
                static_cast<unsigned long long>(
                    gres.maxFootprintBytes));

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    // single_core_host makes the ROADMAP's "~1x cluster speedup on a
    // single-core container" caveat machine-readable: consumers of
    // this JSON can discount the cluster speedup when it is true.
    const unsigned hw_threads = std::thread::hardware_concurrency();
    std::fprintf(f, "  \"host\": {\n");
    std::fprintf(f, "    \"hardware_threads\": %u,\n", hw_threads);
    std::fprintf(f, "    \"single_core_host\": %s,\n",
                 hw_threads <= 1 ? "true" : "false");
    std::fprintf(f, "    \"pool_workers\": %u\n", workers);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"scale\": {\n");
    std::fprintf(f, "    \"servers\": %u,\n", scale.servers);
    std::fprintf(f, "    \"requests_per_vm\": %u,\n", scale.requests);
    std::fprintf(f, "    \"access_sampling\": %u,\n", scale.sampling);
    std::fprintf(f, "    \"seed\": %llu\n",
                 static_cast<unsigned long long>(scale.seed));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"cluster\": {\n");
    std::fprintf(f, "    \"sequential_sec\": %.4f,\n", seq_sec);
    std::fprintf(f, "    \"parallel_sec\": %.4f,\n", par_sec);
    std::fprintf(f, "    \"speedup\": %.3f,\n", speedup);
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"event_queue\": {\n");
    std::fprintf(f, "    \"mix_rounds\": %llu,\n",
                 static_cast<unsigned long long>(rounds));
    const struct
    {
        const char *name;
        const std::array<double, 3> &ops;
    } variants[] = {{"legacy", legacy_ops},
                    {"heap", heap_ops},
                    {"wheel", wheel_ops}};
    for (const auto &v : variants) {
        std::fprintf(f, "    \"%s\": {\n", v.name);
        for (std::size_t i = 0; i < 3; ++i) {
            std::fprintf(
                f, "      \"%s_ops_per_sec\": %.0f%s\n",
                hh::bench::kQueueMixPresets[i].name, v.ops[i],
                i + 1 < 3 ? "," : "");
        }
        std::fprintf(f, "    },\n");
    }
    std::fprintf(f, "    \"speedup\": %.3f\n", queue_speedup);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"profile\": {\n");
    std::fprintf(f, "    \"instrumented_sec\": %.4f,\n", prof_sec);
    std::fprintf(f, "    \"sites\": [\n");
    for (std::size_t i = 0; i < prof_sites.size(); ++i) {
        const auto &s = prof_sites[i];
        std::fprintf(
            f,
            "      {\"name\": \"%s\", \"cycles\": %llu, "
            "\"hits\": %llu}%s\n",
            s.name.c_str(),
            static_cast<unsigned long long>(s.cycles),
            static_cast<unsigned long long>(s.hits),
            i + 1 < prof_sites.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"tracing\": {\n");
    std::fprintf(f, "    \"baseline_sec\": %.4f,\n", par_sec);
    std::fprintf(f, "    \"traced_sec\": %.4f,\n", trc_sec);
    std::fprintf(f, "    \"overhead_pct\": %.2f,\n",
                 trace_overhead_pct);
    std::fprintf(f, "    \"events\": %llu\n",
                 static_cast<unsigned long long>(trace_events));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"auditing\": {\n");
    std::fprintf(f, "    \"baseline_sec\": %.4f,\n", par_sec);
    std::fprintf(f, "    \"audited_sec\": %.4f,\n", aud_sec);
    std::fprintf(f, "    \"overhead_pct\": %.2f,\n",
                 audit_overhead_pct);
    std::fprintf(f, "    \"sweeps\": %llu,\n",
                 static_cast<unsigned long long>(aud.auditsRun));
    std::fprintf(f, "    \"violations\": %llu\n",
                 static_cast<unsigned long long>(aud.auditViolations));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"telemetry\": {\n");
    std::fprintf(f, "    \"baseline_sec\": %.4f,\n", par_sec);
    std::fprintf(f, "    \"telemetered_sec\": %.4f,\n", tel_sec);
    std::fprintf(f, "    \"overhead_pct\": %.2f,\n",
                 telemetry_overhead_pct);
    std::fprintf(f, "    \"epoch_rows\": %llu\n",
                 static_cast<unsigned long long>(telemetry_rows));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"policy\": {\n");
    std::fprintf(f, "    \"policy\": \"hysteresis\",\n");
    std::fprintf(f, "    \"baseline_sec\": %.4f,\n", par_sec);
    std::fprintf(f, "    \"policy_sec\": %.4f,\n", pol_sec);
    std::fprintf(f, "    \"overhead_pct\": %.2f\n",
                 policy_overhead_pct);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"cache_harvest\": {\n");
    std::fprintf(f, "    \"baseline_sec\": %.4f,\n", par_sec);
    std::fprintf(f, "    \"lease_idle_sec\": %.4f,\n", lease_sec);
    std::fprintf(f, "    \"overhead_pct\": %.2f,\n",
                 lease_overhead_pct);
    std::fprintf(f, "    \"lease_grants\": %llu,\n",
                 static_cast<unsigned long long>(lease.leaseGrants));
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 lease_identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"snapshot\": {\n");
    std::fprintf(f, "    \"warmup_ms\": %.3f,\n",
                 hh::sim::cyclesToMs(t_warm));
    std::fprintf(f, "    \"state_bytes\": %zu,\n", state_bytes);
    std::fprintf(f, "    \"save_sec\": %.6f,\n", save_sec);
    std::fprintf(f, "    \"load_sec\": %.6f,\n", load_sec);
    std::fprintf(f, "    \"overhead_pct\": %.2f,\n",
                 snap_overhead_pct);
    std::fprintf(f, "    \"checkpoint_run_sec\": %.4f,\n", ckpt_sec);
    std::fprintf(f, "    \"full_sec\": %.4f,\n", par_sec);
    std::fprintf(f, "    \"resume_sec\": %.4f,\n", resume_sec);
    std::fprintf(f, "    \"warm_start_speedup\": %.3f,\n",
                 warm_speedup);
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 snap_identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    // Warm-start wins hold on a single-core host (less simulated
    // work); host.single_core_host only discounts the cluster speedup.
    std::fprintf(f, "  \"experiment\": {\n");
    std::fprintf(f, "    \"budgets\": [%u, %u, %u],\n", budgets[0],
                 budgets[1], budgets[2]);
    std::fprintf(f, "    \"cold_sec\": %.4f,\n", exp_cold_sec);
    std::fprintf(f, "    \"warm_sec\": %.4f,\n", exp_warm_sec);
    std::fprintf(f, "    \"warm_start_speedup\": %.3f,\n",
                 exp_speedup);
    std::fprintf(f, "    \"warm_started\": %zu,\n",
                 warm_stats.warmStarted);
    std::fprintf(f, "    \"prefix_groups\": %zu,\n",
                 warm_stats.prefixGroups);
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 exp_identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"graph\": {\n");
    std::fprintf(f, "    \"servers\": %u,\n", gres.servers);
    std::fprintf(f, "    \"depth\": %u,\n", gres.depth);
    std::fprintf(f, "    \"requests_per_vm\": %u,\n", graph_requests);
    std::fprintf(f, "    \"run_sec\": %.4f,\n", graph_sec);
    std::fprintf(f, "    \"windows\": %llu,\n",
                 static_cast<unsigned long long>(gres.windows));
    std::fprintf(f, "    \"wire_messages\": %llu,\n",
                 static_cast<unsigned long long>(gres.wireMessages));
    std::fprintf(f, "    \"peak_rss_per_server_kb\": %.1f,\n",
                 graph_rss_per_server_kb);
    std::fprintf(f, "    \"rss_budget_per_server_kb\": %.0f,\n",
                 kGraphRssBudgetKb);
    std::fprintf(f, "    \"rss_overhead_pct\": %.2f,\n",
                 graph_rss_overhead_pct);
    std::fprintf(f, "    \"peak_live_nodes_per_server\": %llu,\n",
                 static_cast<unsigned long long>(
                     gres.maxPeakLiveNodes));
    std::fprintf(f, "    \"engine_bytes_per_server\": %llu\n",
                 static_cast<unsigned long long>(
                     gres.maxFootprintBytes));
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    const double gate_limit = envDouble("HH_OVERHEAD_GATE", 0);
    if (gate_limit > 0) {
        if (trace_overhead_pct > gate_limit) {
            std::fprintf(stderr,
                         "tracing overhead %.1f%% exceeds gate "
                         "%.1f%%\n",
                         trace_overhead_pct, gate_limit);
            return 1;
        }
        if (audit_overhead_pct > gate_limit) {
            std::fprintf(stderr,
                         "auditing overhead %.1f%% exceeds gate "
                         "%.1f%%\n",
                         audit_overhead_pct, gate_limit);
            return 1;
        }
        if (telemetry_overhead_pct > gate_limit) {
            std::fprintf(stderr,
                         "telemetry overhead %.1f%% exceeds gate "
                         "%.1f%%\n",
                         telemetry_overhead_pct, gate_limit);
            return 1;
        }
        if (policy_overhead_pct > gate_limit) {
            std::fprintf(stderr,
                         "policy-decision overhead %.1f%% exceeds "
                         "gate %.1f%%\n",
                         policy_overhead_pct, gate_limit);
            return 1;
        }
        if (lease_overhead_pct > gate_limit) {
            std::fprintf(stderr,
                         "cache-lease idle overhead %.1f%% exceeds "
                         "gate %.1f%%\n",
                         lease_overhead_pct, gate_limit);
            return 1;
        }
        if (snap_overhead_pct > gate_limit) {
            std::fprintf(stderr,
                         "snapshot save+load overhead %.1f%% exceeds "
                         "gate %.1f%%\n",
                         snap_overhead_pct, gate_limit);
            return 1;
        }
        if (graph_rss_overhead_pct > gate_limit) {
            std::fprintf(stderr,
                         "graph fleet resident state %.1f MiB/server "
                         "exceeds the %.0f MiB budget by %.1f%% "
                         "(gate %.1f%%)\n",
                         graph_rss_per_server_kb / 1024.0,
                         kGraphRssBudgetKb / 1024.0,
                         graph_rss_overhead_pct, gate_limit);
            return 1;
        }
    }
    if (aud.auditViolations != 0) {
        std::fprintf(stderr,
                     "audited bench run reported %llu invariant "
                     "violations\n",
                     static_cast<unsigned long long>(
                         aud.auditViolations));
        return 1;
    }
    if (!lease_identical) {
        std::fprintf(stderr,
                     "cache-lease idle run is not bit-identical to "
                     "the disabled baseline\n");
        return 1;
    }
    if (!snap_identical) {
        std::fprintf(stderr,
                     "warm-start resume is not bit-identical to the "
                     "full run\n");
        return 1;
    }
    if (!exp_identical) {
        std::fprintf(stderr,
                     "experiment warm-start sweep is not "
                     "bit-identical to the cold sweep\n");
        return 1;
    }
    return identical ? 0 : 1;
}
