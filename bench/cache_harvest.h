/**
 * @file
 * Cache-capacity harvesting sweep: the same cluster scale run three
 * ways to isolate the second harvest dimension (src/lease/):
 *
 *   core-only   HardHarvest-Block, cache leasing off — the paper's
 *               core-harvesting baseline.
 *   cache-only  NoHarvest with cache leasing on — cores never move,
 *               so any batch gain comes solely from leased L3 ways
 *               reached through the Harvest VM's overflow probe.
 *   combined    HardHarvest-Block with cache leasing on — both
 *               harvest dimensions at once.
 *
 * Rendered as a batch-throughput vs request-P99 frontier table plus
 * machine-checked `cache-check` lines:
 *
 *   cache-check combined>=core-only: PASS|FAIL
 *       Adding the cache dimension must not lose batch throughput
 *       against core harvesting alone at this scale.
 *   cache-check combined-p99-budget: PASS|FAIL
 *       ... and must stay within a 10% request-P99 budget of the
 *       core-only baseline (the "equal tail budget" framing).
 *   cache-check lease-activity: PASS|FAIL
 *       The cache modes actually granted leases (way-cycles > 0);
 *       the sweep is not vacuous.
 *   cache-check core-only-no-leases: PASS|FAIL
 *       The baseline granted none — leasing is opt-in.
 *   cache-check audit-clean: PASS|FAIL
 *       Every mode ran under the invariant auditor (including the
 *       "no harvested line outlives its lease" sweep) violation-free.
 *
 * Used by fig_cache_harvest and `repro_all --cache-harvest` so both
 * print byte-identical tables; CI greps the PASS lines.
 */

#ifndef HH_BENCH_CACHE_HARVEST_H
#define HH_BENCH_CACHE_HARVEST_H

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "policy_frontier.h"

namespace hh::bench {

/** One harvesting mode's cluster run in the cache sweep. */
struct CachePoint
{
    std::string mode;
    hh::cluster::ClusterResults results;
};

/**
 * Run the three-mode sweep over the same scale, seed and worker
 * count. Every mode runs with the invariant auditor on so the lease
 * invariant ("no harvested line outlives its lease") is swept live.
 */
inline std::vector<CachePoint>
runCacheHarvestSweep(const BenchScale &scale, unsigned workers)
{
    struct Mode
    {
        const char *name;
        hh::cluster::SystemKind kind;
        bool lend;
    };
    static const Mode kModes[] = {
        {"core-only", hh::cluster::SystemKind::HardHarvestBlock,
         false},
        {"cache-only", hh::cluster::SystemKind::NoHarvest, true},
        {"combined", hh::cluster::SystemKind::HardHarvestBlock, true},
    };
    std::vector<CachePoint> points;
    for (const Mode &m : kModes) {
        hh::cluster::SystemConfig cfg =
            hh::cluster::makeSystem(m.kind);
        applyScale(cfg, scale);
        cfg.cacheLendEnabled = m.lend;
        cfg.auditEnabled = true;
        std::printf("running mode=%s...\n", m.name);
        points.push_back({m.name,
                          hh::cluster::runCluster(cfg, scale.servers,
                                                  scale.seed,
                                                  workers)});
    }
    return points;
}

/** The frontier table: throughput vs tail latency per mode. */
inline void
printCacheHarvest(const std::vector<CachePoint> &points)
{
    std::printf("%-12s %12s %10s %10s %8s %8s %8s %10s\n", "mode",
                "batchTput", "p99[ms]", "p50[ms]", "loans", "leases",
                "recalls", "flushed");
    for (const auto &p : points) {
        std::printf(
            "%-12s %12.2f %10.3f %10.3f %8llu %8llu %8llu %10llu\n",
            p.mode.c_str(), meanBatchThroughput(p.results),
            p.results.avgP99Ms(), p.results.avgP50Ms(),
            static_cast<unsigned long long>(p.results.coreLoans),
            static_cast<unsigned long long>(p.results.leaseGrants),
            static_cast<unsigned long long>(
                p.results.leaseRecalls + p.results.leaseExpiries),
            static_cast<unsigned long long>(
                p.results.leaseFlushedLines));
    }
}

/**
 * The cache-harvest invariants; prints one grep-able line each and
 * returns the number of failures.
 */
inline int
checkCacheHarvest(const std::vector<CachePoint> &points)
{
    const CachePoint *core = nullptr;
    const CachePoint *cache = nullptr;
    const CachePoint *both = nullptr;
    for (const auto &p : points) {
        if (p.mode == "core-only")
            core = &p;
        else if (p.mode == "cache-only")
            cache = &p;
        else if (p.mode == "combined")
            both = &p;
    }
    int failures = 0;
    if (core && both) {
        const double c = meanBatchThroughput(core->results);
        const double b = meanBatchThroughput(both->results);
        bool ok = b >= c;
        std::printf("cache-check combined>=core-only: %s "
                    "(%.2f vs %.2f tasks/s)\n",
                    ok ? "PASS" : "FAIL", b, c);
        failures += ok ? 0 : 1;

        const double cp = core->results.avgP99Ms();
        const double bp = both->results.avgP99Ms();
        ok = bp <= cp * 1.10;
        std::printf("cache-check combined-p99-budget: %s "
                    "(%.3f vs %.3f ms, +10%% budget)\n",
                    ok ? "PASS" : "FAIL", bp, cp);
        failures += ok ? 0 : 1;
    }
    if (cache && both) {
        const bool ok = cache->results.leaseGrants > 0 &&
                        cache->results.leaseWayCycles > 0 &&
                        both->results.leaseGrants > 0 &&
                        both->results.leaseWayCycles > 0;
        std::printf("cache-check lease-activity: %s "
                    "(cache-only grants=%llu, combined grants=%llu)\n",
                    ok ? "PASS" : "FAIL",
                    static_cast<unsigned long long>(
                        cache->results.leaseGrants),
                    static_cast<unsigned long long>(
                        both->results.leaseGrants));
        failures += ok ? 0 : 1;
    }
    if (core) {
        const bool ok = core->results.leaseGrants == 0 &&
                        core->results.leaseWayCycles == 0;
        std::printf("cache-check core-only-no-leases: %s\n",
                    ok ? "PASS" : "FAIL");
        failures += ok ? 0 : 1;
    }
    std::uint64_t audits = 0, violations = 0;
    for (const auto &p : points) {
        audits += p.results.auditsRun;
        violations += p.results.auditViolations;
    }
    {
        const bool ok = audits > 0 && violations == 0;
        std::printf("cache-check audit-clean: %s "
                    "(audits=%llu, violations=%llu)\n",
                    ok ? "PASS" : "FAIL",
                    static_cast<unsigned long long>(audits),
                    static_cast<unsigned long long>(violations));
        failures += ok ? 0 : 1;
    }
    return failures;
}

} // namespace hh::bench

#endif // HH_BENCH_CACHE_HARVEST_H
