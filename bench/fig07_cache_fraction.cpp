/**
 * @file
 * Figure 7: tail latency of microservices on a system with a
 * fraction of the whole cache and TLB hierarchy (Inf, 100%, 75%,
 * 50%, 25% of ways, sets constant).
 *
 * Paper: even at 50% of the hierarchy the impact is very small —
 * microservice working sets are small.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace hh::bench;
    using namespace hh::cluster;

    BenchScale scale;
    const ObsOptions obs = parseObsArgs(argc, argv);
    ObsSink sink(obs);
    printHeader("Figure 7",
                "P99 tail vs cache/TLB size fraction [ms]");

    struct Variant
    {
        const char *name;
        bool infinite;
        double fraction;
    };
    const Variant variants[] = {
        {"Inf", true, 1.0},   {"100%", false, 1.0},
        {"75%", false, 0.75}, {"50%", false, 0.5},
        {"25%", false, 0.25},
    };

    std::vector<std::string> series;
    std::vector<SystemConfig> cfgs;
    for (const auto &v : variants) {
        SystemConfig cfg = makeSystem(SystemKind::NoHarvest);
        applyScale(cfg, scale);
        cfg.infiniteCaches = v.infinite;
        cfg.waysFraction = v.fraction;
        applyObs(cfg, obs);
        cfgs.push_back(cfg);
        series.emplace_back(v.name);
    }

    std::vector<std::vector<ServiceResult>> runs;
    std::vector<double> avg;
    auto sweep = runServerSweep(cfgs, "BFS", scale.seed);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        auto &res = sweep[i];
        sink.collect(res, series[i]);
        runs.push_back(res.services);
        avg.push_back(res.avgP99Ms());
    }

    printServiceTable(series, runs, "p99[ms]",
                      [](const ServiceResult &r) { return r.p99Ms; });
    std::printf("\nAvg tail vs 100%% (paper: small impact even at "
                "50%%):\n");
    for (std::size_t i = 0; i < series.size(); ++i)
        std::printf("  %-5s %.2fx\n", series[i].c_str(),
                    avg[i] / avg[1]);
    return sink.finish();
}
